//! Minimal dense row-major matrix — just the operations the RBM and
//! MLP need, implemented plainly and tested thoroughly.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::AnnError;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
    }

    /// Builds from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, AnnError> {
        let n_cols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != n_cols) {
            return Err(AnnError::dims(
                format!("every row of length {n_cols}"),
                "ragged rows".to_string(),
            ));
        }
        Ok(Self {
            rows: rows.len(),
            cols: n_cols,
            data: rows.concat(),
        })
    }

    /// Number of rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        if x.len() != self.cols {
            return Err(AnnError::dims(
                format!("vector of length {}", self.cols),
                format!("length {}", x.len()),
            ));
        }
        Ok((0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect())
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        if x.len() != self.rows {
            return Err(AnnError::dims(
                format!("vector of length {}", self.rows),
                format!("length {}", x.len()),
            ));
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            for c in 0..self.cols {
                out[c] += self.data[r * self.cols + c] * xr;
            }
        }
        Ok(out)
    }

    /// Rank-1 update `self += scale · a · bᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when shapes do not match.
    pub fn rank1_update(&mut self, a: &[f64], b: &[f64], scale: f64) -> Result<(), AnnError> {
        if a.len() != self.rows || b.len() != self.cols {
            return Err(AnnError::dims(
                format!("{}-vec and {}-vec", self.rows, self.cols),
                format!("{}-vec and {}-vec", a.len(), b.len()),
            ));
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.data[r * self.cols + c] += scale * a[r] * b[c];
            }
        }
        Ok(())
    }

    /// Frobenius norm (for convergence diagnostics in tests).
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// The logistic sigmoid, numerically safe for large `|x|`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_rows_and_ragged_rejection() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_t(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn rank1_update_adds_outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(&[1.0, 2.0], &[3.0, 4.0], 0.5).unwrap();
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 4.0);
        assert!(m.rank1_update(&[1.0], &[1.0, 1.0], 1.0).is_err());
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = Matrix::random(4, 4, 0.1, &mut seeded(1));
        let b = Matrix::random(4, 4, 0.1, &mut seeded(1));
        assert_eq!(a, b);
        for r in 0..4 {
            for c in 0..4 {
                assert!(a.get(r, c).abs() <= 0.1);
            }
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(1e6).is_finite());
        assert!(sigmoid(-1e6).is_finite());
        // Symmetry.
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius() - 5.0).abs() < 1e-12);
    }
}
