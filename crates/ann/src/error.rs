//! Error type for the ANN substrate.

use std::fmt;

/// Errors produced by network construction, training and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnnError {
    /// Dimensions of an operation do not match.
    DimensionMismatch {
        /// What was expected.
        expected: String,
        /// What was received.
        got: String,
    },
    /// The training set is empty or inconsistent.
    BadTrainingSet(String),
    /// A configuration value is out of range.
    BadConfig(String),
}

impl AnnError {
    pub(crate) fn dims(expected: impl Into<String>, got: impl Into<String>) -> Self {
        AnnError::DimensionMismatch {
            expected: expected.into(),
            got: got.into(),
        }
    }
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            AnnError::BadTrainingSet(msg) => write!(f, "bad training set: {msg}"),
            AnnError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for AnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = AnnError::dims("3x4", "3x5");
        assert_eq!(e.to_string(), "dimension mismatch: expected 3x4, got 3x5");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnnError>();
    }
}
