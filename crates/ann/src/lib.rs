//! # helio-ann
//!
//! A from-scratch artificial-neural-network substrate implementing the
//! paper's deep belief network (Fig. 6): restricted Boltzmann machines
//! pre-trained layer by layer with contrastive divergence, topped by a
//! back-propagation output network. No external linear-algebra or ML
//! dependencies — the node the paper targets runs this at 93.5 kHz, so
//! the model is small (tens of neurons) and a minimal dense
//! implementation is both sufficient and faithful.
//!
//! The network maps the online scheduler's observation vector
//! (previous-period solar, supercapacitor voltages, accumulated DMR) to
//! its decision vector (capacitor index, scheduling-pattern index α,
//! task-execution bits) — see `heliosched::online`.
//!
//! ## Example
//!
//! ```
//! use helio_ann::{Dbn, DbnConfig};
//!
//! # fn main() -> Result<(), helio_ann::AnnError> {
//! // Learn y = [mean(x)] from a toy data set.
//! let inputs: Vec<Vec<f64>> = (0..64)
//!     .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
//!     .collect();
//! let targets: Vec<Vec<f64>> = inputs
//!     .iter()
//!     .map(|x| vec![(x[0] + x[1]) / 14.0])
//!     .collect();
//! let dbn = Dbn::train(&inputs, &targets, &DbnConfig::small(7))?;
//! let y = dbn.predict(&[3.0, 4.0])?;
//! assert!((y[0] - 0.5).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

pub mod compiled;
pub mod dbn;
pub mod distill;
pub mod error;
pub mod matrix;
pub mod mlp;
pub mod rbm;
pub mod scaler;
pub mod train;

pub use compiled::{CompiledDbn, CompiledScratch, CompiledTier, Layer0Fold};
pub use dbn::{BatchPredictScratch, Dbn, DbnConfig, PredictScratch};
pub use distill::{decisions_match, DistillConfig, DistilledPolicy};
pub use error::AnnError;
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpTrainScratch};
pub use rbm::{Rbm, RbmTrainScratch};
pub use scaler::MinMaxScaler;
pub use train::TrainingSet;
