//! The deep belief network of the paper's Fig. 6: a stack of RBMs
//! pre-trained greedily with CD-1 (the "hidden layers" extracting
//! features of the inputs), assembled into a feed-forward network whose
//! output ("visible") layers are fine-tuned with back-propagation.

use helio_common::rng::seeded;
use serde::{Deserialize, Serialize};

use crate::error::AnnError;
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::rbm::Rbm;
use crate::scaler::MinMaxScaler;
use crate::train::TrainingSet;

/// Training hyper-parameters of a [`Dbn`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbnConfig {
    /// Hidden layer sizes (the RBM stack), e.g. `[16, 12]`.
    pub hidden: Vec<usize>,
    /// CD-1 epochs per RBM layer.
    pub rbm_epochs: usize,
    /// CD-1 learning rate.
    pub rbm_lr: f64,
    /// Back-propagation fine-tuning epochs.
    pub bp_epochs: usize,
    /// Back-propagation learning rate.
    pub bp_lr: f64,
    /// Deterministic seed for initialisation and CD sampling.
    pub seed: u64,
}

impl DbnConfig {
    /// A compact configuration adequate for the scheduler's ~20-input
    /// observation vectors; trains in well under a second.
    pub fn small(seed: u64) -> Self {
        Self {
            hidden: vec![16, 10],
            rbm_epochs: 30,
            rbm_lr: 0.1,
            bp_epochs: 600,
            bp_lr: 0.4,
            seed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] for empty/zero layers or
    /// non-positive learning rates.
    pub fn validate(&self) -> Result<(), AnnError> {
        if self.hidden.is_empty() || self.hidden.contains(&0) {
            return Err(AnnError::BadConfig(
                "hidden layer list must be nonempty with nonzero sizes".into(),
            ));
        }
        if self.rbm_lr <= 0.0 || self.bp_lr <= 0.0 {
            return Err(AnnError::BadConfig(
                "learning rates must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Reusable buffers for [`Dbn::predict_into`]: the scaled input, the
/// MLP's ping-pong activations, and the squashed output. One scratch
/// per call site makes steady-state inference allocation-free.
#[derive(Debug, Default, Clone)]
pub struct PredictScratch {
    x: Vec<f64>,
    hidden: Vec<f64>,
    y: Vec<f64>,
}

/// Reusable buffers for [`Dbn::predict_batch_into`]: the scaled input
/// batch and the MLP's ping-pong activation matrices. One scratch per
/// call site makes steady-state batched inference allocation-free once
/// the matrices have grown to the widest layer.
#[derive(Debug, Default, Clone)]
pub struct BatchPredictScratch {
    x: Matrix,
    hidden: Matrix,
    y: Matrix,
}

/// A trained DBN regressor with built-in input/output scaling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dbn {
    input_scaler: MinMaxScaler,
    output_scaler: MinMaxScaler,
    network: Mlp,
    final_loss: f64,
}

impl Dbn {
    /// Trains a DBN on `(inputs, targets)` pairs: greedy RBM
    /// pre-training of the hidden stack, then supervised BP fine-tuning
    /// of the whole network. Thin wrapper over [`Dbn::train_set`] —
    /// identical results, one extra packing pass over the data.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for empty or inconsistent
    /// data and [`AnnError::BadConfig`] for invalid hyper-parameters.
    pub fn train(
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        cfg: &DbnConfig,
    ) -> Result<Self, AnnError> {
        cfg.validate()?;
        if inputs.len() != targets.len() {
            return Err(AnnError::BadTrainingSet(format!(
                "{} inputs vs {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        Self::train_set(&TrainingSet::from_rows(inputs, targets)?, cfg)
    }

    /// Trains a DBN on a packed [`TrainingSet`] — the core training
    /// entry point. The whole pipeline stays `Matrix`-native: scaler
    /// fit, transforms, CD-1 sweeps and back-propagation all read the
    /// packed rows in place, and the per-sample kernels reuse scratch
    /// buffers, so no stage clones the data set.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for an empty set and
    /// [`AnnError::BadConfig`] for invalid hyper-parameters.
    pub fn train_set(set: &TrainingSet, cfg: &DbnConfig) -> Result<Self, AnnError> {
        cfg.validate()?;
        if set.is_empty() {
            return Err(AnnError::BadTrainingSet(format!(
                "{} inputs vs {} targets",
                set.len(),
                set.len()
            )));
        }
        let input_scaler = MinMaxScaler::fit_matrix(&set.inputs)?;
        let output_scaler = MinMaxScaler::fit_matrix(&set.targets)?;
        let n = set.len();
        let in_dim = input_scaler.dim();
        let out_dim = output_scaler.dim();
        let mut xs = Matrix::zeros(n, in_dim);
        for r in 0..n {
            input_scaler.transform_slice(set.inputs.row(r), xs.row_mut(r))?;
        }
        // Targets are squeezed into [0.05, 0.95] so the sigmoid output
        // layer can actually reach them.
        let mut ys = Matrix::zeros(n, out_dim);
        for r in 0..n {
            output_scaler.transform_slice(set.targets.row(r), ys.row_mut(r))?;
            for y in ys.row_mut(r) {
                *y = 0.05 + 0.9 * *y;
            }
        }

        let mut rng = seeded(cfg.seed);

        // Greedy unsupervised pre-training of the RBM stack.
        let mut rbms: Vec<Rbm> = Vec::with_capacity(cfg.hidden.len());
        let mut layer_input = xs.clone();
        let mut prev_dim = in_dim;
        for &h in &cfg.hidden {
            let mut rbm = Rbm::new(prev_dim, h, &mut rng);
            rbm.train_matrix(&layer_input, cfg.rbm_epochs, cfg.rbm_lr, &mut rng)?;
            // One blocked matmul instead of a matvec per sample;
            // bitwise identical to mapping `hidden_probs`.
            layer_input = rbm.hidden_probs_batch_matrix(&layer_input)?;
            prev_dim = h;
            rbms.push(rbm);
        }

        // Assemble the full network and load the pre-trained layers.
        let mut sizes = vec![in_dim];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(out_dim);
        let mut network = Mlp::new(&sizes, &mut rng)?;
        for (i, rbm) in rbms.iter().enumerate() {
            network.load_layer(i, rbm.weights().clone(), rbm.hidden_bias().to_vec())?;
        }

        // Supervised fine-tuning.
        let final_loss = network.train_matrix(&xs, &ys, cfg.bp_epochs, cfg.bp_lr)?;

        Ok(Self {
            input_scaler,
            output_scaler,
            network,
            final_loss,
        })
    }

    /// Predicts the target vector for one raw (unscaled) input.
    ///
    /// **This is the allocating convenience wrapper**: every call
    /// builds a fresh [`PredictScratch`] and output `Vec`. Hot paths
    /// that predict once per period (the online planner, benchmarks,
    /// anything inside a simulation loop) must use
    /// [`Dbn::predict_into`] with a reused scratch — or the compiled
    /// fast path, [`crate::compiled::CompiledDbn`] — instead.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn predict(&self, input: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut scratch = PredictScratch::default();
        let mut out = Vec::with_capacity(self.output_dim());
        self.predict_into(input, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Dbn::predict`] writing the prediction into `out` and reusing
    /// `scratch` for every intermediate, so repeated inference (the
    /// online planner calls this once per period) allocates nothing
    /// after the first call. Bitwise identical to [`Dbn::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn predict_into(
        &self,
        input: &[f64],
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        self.input_scaler.transform_into(input, &mut scratch.x)?;
        self.network
            .forward_into(&scratch.x, &mut scratch.hidden, &mut scratch.y)?;
        for v in scratch.y.iter_mut() {
            *v = ((*v - 0.05) / 0.9).clamp(0.0, 1.0);
        }
        self.output_scaler.inverse_into(&scratch.y, out)
    }

    /// Batched [`Dbn::predict_into`]: one prediction per row of
    /// `inputs` (a `batch × input_dim` matrix of raw, unscaled
    /// features), written to the corresponding row of `out`. The whole
    /// batch goes through each network layer as a single blocked
    /// matrix product, so every row of `out` is bitwise identical to
    /// calling [`Dbn::predict_into`] on that row alone — batching is a
    /// pure throughput optimisation.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `inputs` is not
    /// `batch × input_dim`.
    pub fn predict_batch_into(
        &self,
        inputs: &Matrix,
        scratch: &mut BatchPredictScratch,
        out: &mut Matrix,
    ) -> Result<(), AnnError> {
        if inputs.cols() != self.input_dim() {
            return Err(AnnError::dims(
                format!("{} input features", self.input_dim()),
                format!("{}", inputs.cols()),
            ));
        }
        let batch = inputs.rows();
        scratch.x.reset(batch, self.input_dim());
        for r in 0..batch {
            self.input_scaler
                .transform_slice(inputs.row(r), scratch.x.row_mut(r))?;
        }
        self.network
            .forward_batch_into(&scratch.x, &mut scratch.hidden, &mut scratch.y)?;
        for r in 0..batch {
            for v in scratch.y.row_mut(r) {
                *v = ((*v - 0.05) / 0.9).clamp(0.0, 1.0);
            }
        }
        out.reset(batch, self.output_dim());
        for r in 0..batch {
            self.output_scaler
                .inverse_slice(scratch.y.row(r), out.row_mut(r))?;
        }
        Ok(())
    }

    /// Mean training loss of the final fine-tuning epoch (scaled
    /// space).
    pub fn final_loss(&self) -> f64 {
        self.final_loss
    }

    /// The fitted input scaler: compile-time affine folding reads it
    /// (see `crate::compiled`) and distillation callers use its range
    /// to build trajectory samples inside the trained region (see
    /// `crate::distill`).
    pub fn input_scaler(&self) -> &MinMaxScaler {
        &self.input_scaler
    }

    /// The fitted output scaler.
    pub(crate) fn output_scaler(&self) -> &MinMaxScaler {
        &self.output_scaler
    }

    /// The fine-tuned network.
    pub(crate) fn network(&self) -> &Mlp {
        &self.network
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_scaler.dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.output_scaler.dim()
    }

    /// Serialises the trained network to JSON (deployable weights).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] when serialisation fails (should
    /// not happen for well-formed networks).
    pub fn to_json(&self) -> Result<String, AnnError> {
        serde_json::to_string(self).map_err(|e| AnnError::BadConfig(e.to_string()))
    }

    /// Restores a network serialised with [`Dbn::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] for malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, AnnError> {
        serde_json::from_str(json).map_err(|e| AnnError::BadConfig(e.to_string()))
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests exercise the allocating wrapper itself
mod tests {
    use super::*;

    /// A nonlinear two-input function mimicking the scheduler mapping
    /// (bounded inputs, bounded outputs).
    fn dataset() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let a = i as f64 / 11.0;
                let b = j as f64 / 11.0;
                xs.push(vec![a * 50.0, b * 4.0 + 1.0]); // scheduler-like ranges
                ys.push(vec![(a * b).sqrt(), if a + b > 1.0 { 1.0 } else { 0.0 }]);
            }
        }
        (xs, ys)
    }

    #[test]
    fn learns_nonlinear_mapping() {
        let (xs, ys) = dataset();
        let dbn = Dbn::train(&xs, &ys, &DbnConfig::small(3)).unwrap();
        assert!(dbn.final_loss() < 0.01, "loss {}", dbn.final_loss());
        // Spot-check a few points.
        let y = dbn.predict(&[50.0, 5.0]).unwrap(); // a=1, b=1
        assert!(y[0] > 0.8, "sqrt(1·1) ≈ 1, got {}", y[0]);
        assert!(y[1] > 0.7, "threshold output should fire, got {}", y[1]);
        let y = dbn.predict(&[0.0, 1.0]).unwrap(); // a=0, b=0
        assert!(y[0] < 0.25, "sqrt(0) ≈ 0, got {}", y[0]);
        assert!(
            y[1] < 0.35,
            "threshold output should stay low, got {}",
            y[1]
        );
    }

    #[test]
    fn pretraining_plus_bp_beats_tiny_bp_budget() {
        // With a small BP budget, RBM pre-training should help (or at
        // least not hurt): compare against a config with zero RBM epochs.
        let (xs, ys) = dataset();
        let mut with = DbnConfig::small(4);
        with.bp_epochs = 40;
        let mut without = with.clone();
        without.rbm_epochs = 0;
        let dbn_with = Dbn::train(&xs, &ys, &with).unwrap();
        let dbn_without = Dbn::train(&xs, &ys, &without).unwrap();
        assert!(
            dbn_with.final_loss() < dbn_without.final_loss() * 1.5,
            "pretrained {} vs cold {}",
            dbn_with.final_loss(),
            dbn_without.final_loss()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = dataset();
        let a = Dbn::train(&xs, &ys, &DbnConfig::small(5)).unwrap();
        let b = Dbn::train(&xs, &ys, &DbnConfig::small(5)).unwrap();
        assert_eq!(
            a.predict(&[25.0, 3.0]).unwrap(),
            b.predict(&[25.0, 3.0]).unwrap()
        );
    }

    #[test]
    fn predict_into_is_bitwise_predict() {
        let (xs, ys) = dataset();
        let dbn = Dbn::train(&xs, &ys, &DbnConfig::small(7)).unwrap();
        let mut scratch = PredictScratch::default();
        let mut out = Vec::new();
        for x in xs.iter().step_by(17) {
            dbn.predict_into(x, &mut scratch, &mut out).unwrap();
            assert_eq!(out, dbn.predict(x).unwrap());
        }
        assert!(dbn.predict_into(&[1.0], &mut scratch, &mut out).is_err());
    }

    #[test]
    fn predict_batch_into_is_bitwise_per_row_predict() {
        let (xs, ys) = dataset();
        let dbn = Dbn::train(&xs, &ys, &DbnConfig::small(8)).unwrap();
        let rows: Vec<Vec<f64>> = xs.iter().step_by(13).cloned().collect();
        let inputs = Matrix::from_rows(&rows).unwrap();
        let mut scratch = BatchPredictScratch::default();
        let mut out = Matrix::default();
        // Twice, so the second pass exercises reused buffers.
        for _ in 0..2 {
            dbn.predict_batch_into(&inputs, &mut scratch, &mut out)
                .unwrap();
            assert_eq!((out.rows(), out.cols()), (rows.len(), dbn.output_dim()));
            for (r, x) in rows.iter().enumerate() {
                assert_eq!(out.row(r), dbn.predict(x).unwrap().as_slice(), "row {r}");
            }
        }
        let bad = Matrix::zeros(2, dbn.input_dim() + 1);
        assert!(dbn
            .predict_batch_into(&bad, &mut scratch, &mut out)
            .is_err());
        let empty = Matrix::zeros(0, dbn.input_dim());
        dbn.predict_batch_into(&empty, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn train_set_is_bitwise_train() {
        let (xs, ys) = dataset();
        let mut cfg = DbnConfig::small(9);
        cfg.bp_epochs = 60;
        let a = Dbn::train(&xs, &ys, &cfg).unwrap();
        let set = TrainingSet::from_rows(&xs, &ys).unwrap();
        let b = Dbn::train_set(&set, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.final_loss().to_bits(), b.final_loss().to_bits());
    }

    #[test]
    fn empty_and_mismatched_sets_are_rejected() {
        let cfg = DbnConfig::small(1);
        let empty = TrainingSet::from_rows(&[], &[]).unwrap();
        assert!(matches!(
            Dbn::train_set(&empty, &cfg),
            Err(AnnError::BadTrainingSet(_))
        ));
        assert!(matches!(
            Dbn::train(&[vec![1.0]], &[], &cfg),
            Err(AnnError::BadTrainingSet(_))
        ));
        assert!(matches!(
            Dbn::train(&[vec![1.0], vec![1.0, 2.0]], &[vec![0.0], vec![0.0]], &cfg),
            Err(AnnError::BadTrainingSet(_))
        ));
    }

    #[test]
    fn json_round_trip() {
        let (xs, ys) = dataset();
        let dbn = Dbn::train(&xs, &ys, &DbnConfig::small(6)).unwrap();
        let json = dbn.to_json().unwrap();
        let back = Dbn::from_json(&json).unwrap();
        let a = dbn.predict(&[30.0, 2.0]).unwrap();
        let b = back.predict(&[30.0, 2.0]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            // JSON prints decimal floats; round-trip is close, not exact.
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn validation_errors() {
        let (xs, ys) = dataset();
        let mut cfg = DbnConfig::small(1);
        cfg.hidden = vec![];
        assert!(Dbn::train(&xs, &ys, &cfg).is_err());
        let cfg = DbnConfig::small(1);
        assert!(Dbn::train(&[], &[], &cfg).is_err());
        assert!(Dbn::train(&xs, &ys[..3], &cfg).is_err());
        let dbn = Dbn::train(&xs, &ys, &cfg).unwrap();
        assert!(dbn.predict(&[1.0]).is_err());
        assert_eq!(dbn.input_dim(), 2);
        assert_eq!(dbn.output_dim(), 2);
    }
}
