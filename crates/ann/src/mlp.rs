//! A dense feed-forward network trained by plain back-propagation —
//! the "BP network" forming the visible/output layers of the paper's
//! DBN.

use helio_common::rng::DetRng;
use serde::{Deserialize, Serialize};

use crate::error::AnnError;
use crate::matrix::{delta_out_into, sigmoid_bias_into, Matrix};

/// One dense layer: `weights · x + bias` followed by a sigmoid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    /// `out × in` weights.
    weights: Matrix,
    bias: Vec<f64>,
}

impl Layer {
    fn new(input: usize, output: usize, rng: &mut DetRng) -> Self {
        let scale = (6.0 / (input + output) as f64).sqrt();
        Self {
            weights: Matrix::random(output, input, scale, rng),
            bias: vec![0.0; output],
        }
    }

    fn forward_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        self.weights.matvec_into(x, out)?;
        sigmoid_bias_into(out, &self.bias);
        Ok(())
    }

    /// Forward pass on a whole batch (`samples × in` rows in, `samples
    /// × out` rows out) via the blocked matmul, writing into a
    /// caller-owned matrix so repeated batched inference reuses the
    /// allocation. `X · Wᵀ` computes the same ascending-index dot
    /// products as the per-sample `W · x`, so the result is bitwise
    /// identical to mapping [`Layer::forward`].
    fn forward_batch_into(&self, x: &Matrix, out: &mut Matrix) -> Result<(), AnnError> {
        out.reset(x.rows(), self.bias.len());
        x.matmul_bt_into(&self.weights, out)?;
        for r in 0..out.rows() {
            sigmoid_bias_into(out.row_mut(r), &self.bias);
        }
        Ok(())
    }
}

/// Reusable buffers for [`Mlp::sgd_step_into`]: per-layer activations
/// plus the two delta vectors of the backward pass. Construct once,
/// thread through every step of a training run, and the whole run
/// stops allocating after the first sample (the trainer's zero-alloc
/// gate relies on this).
#[derive(Debug, Default)]
pub struct MlpTrainScratch {
    acts: Vec<Vec<f64>>,
    delta: Vec<f64>,
    back: Vec<f64>,
}

/// A multi-layer perceptron with sigmoid activations throughout
/// (outputs live in `[0, 1]`; callers scale targets accordingly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[8, 16, 3]` for
    /// 8 inputs, one 16-unit hidden layer and 3 outputs.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] for fewer than two sizes or any
    /// zero size.
    pub fn new(sizes: &[usize], rng: &mut DetRng) -> Result<Self, AnnError> {
        if sizes.len() < 2 {
            return Err(AnnError::BadConfig(
                "MLP needs at least input and output sizes".into(),
            ));
        }
        if sizes.contains(&0) {
            return Err(AnnError::BadConfig("layer sizes must be nonzero".into()));
        }
        let layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], rng))
            .collect();
        Ok(Self { layers })
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].weights.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").bias.len()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.forward_into(x, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Mlp::forward`] ping-ponging between two caller-owned buffers:
    /// `out` ends up holding the output activation, and reused buffers
    /// make repeated inference allocation-free (after the buffers grow
    /// to the widest layer once). The input is read in place, never
    /// copied.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn forward_into(
        &self,
        x: &[f64],
        scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        let mut first = true;
        for layer in &self.layers {
            if first {
                layer.forward_into(x, out)?;
                first = false;
            } else {
                std::mem::swap(scratch, out);
                layer.forward_into(scratch, out)?;
            }
        }
        Ok(())
    }

    /// Forward pass over a batch of inputs, one output row per input
    /// row. Runs each layer as one blocked matrix product instead of
    /// `samples` matrix–vector products; results are bitwise identical
    /// to calling [`Mlp::forward`] per sample.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for ragged or
    /// wrong-width inputs.
    pub fn forward_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AnnError> {
        if xs.is_empty() {
            return Ok(Vec::new());
        }
        let a = self.forward_batch_matrix(&Matrix::from_rows(xs)?)?;
        Ok((0..a.rows()).map(|r| a.row(r).to_vec()).collect())
    }

    /// [`Mlp::forward_batch`] on an already-packed `samples × in`
    /// matrix, returning the `samples × out` activations as a matrix —
    /// no per-row `Vec` is ever materialised.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong-width inputs.
    pub fn forward_batch_matrix(&self, xs: &Matrix) -> Result<Matrix, AnnError> {
        let mut scratch = Matrix::default();
        let mut out = Matrix::default();
        self.forward_batch_into(xs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Mlp::forward_batch_matrix`] ping-ponging between two
    /// caller-owned matrices, mirroring [`Mlp::forward_into`]: `out`
    /// ends up holding the `samples × out` activations and reused
    /// buffers make repeated batched inference allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong-width inputs.
    pub fn forward_batch_into(
        &self,
        xs: &Matrix,
        scratch: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<(), AnnError> {
        let mut first = true;
        for layer in &self.layers {
            if first {
                layer.forward_batch_into(xs, out)?;
                first = false;
            } else {
                std::mem::swap(scratch, out);
                layer.forward_batch_into(scratch, out)?;
            }
        }
        Ok(())
    }

    /// One SGD step on a single `(input, target)` pair with squared
    /// loss; returns the sample loss before the update.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong sizes.
    pub fn sgd_step(&mut self, x: &[f64], target: &[f64], lr: f64) -> Result<f64, AnnError> {
        self.sgd_step_into(x, target, lr, &mut MlpTrainScratch::default())
    }

    /// [`Mlp::sgd_step`] through caller-provided scratch: identical
    /// update, zero heap allocation once the buffers have grown to
    /// this network's layer widths.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong sizes.
    pub fn sgd_step_into(
        &mut self,
        x: &[f64],
        target: &[f64],
        lr: f64,
        scratch: &mut MlpTrainScratch,
    ) -> Result<f64, AnnError> {
        if target.len() != self.output_dim() {
            return Err(AnnError::dims(
                format!("target of length {}", self.output_dim()),
                format!("{}", target.len()),
            ));
        }
        // Forward pass keeping every layer's activation (scratch.acts[li]
        // is layer li's output; layer 0 reads `x` in place).
        let nl = self.layers.len();
        if scratch.acts.len() != nl {
            scratch.acts.resize_with(nl, Vec::new);
        }
        for li in 0..nl {
            let (done, rest) = scratch.acts.split_at_mut(li);
            let input: &[f64] = if li == 0 { x } else { &done[li - 1] };
            self.layers[li].forward_into(input, &mut rest[0])?;
        }
        let out = &scratch.acts[nl - 1];
        let loss: f64 = out
            .iter()
            .zip(target)
            .map(|(o, t)| (o - t) * (o - t))
            .sum::<f64>()
            / 2.0;

        // Output delta for squared loss through a sigmoid.
        delta_out_into(out, target, &mut scratch.delta);

        for li in (0..nl).rev() {
            let input: &[f64] = if li == 0 { x } else { &scratch.acts[li - 1] };
            let layer = &mut self.layers[li];
            if li > 0 {
                // Fused: delta propagation through the pre-update
                // weights, derivative factors, and the rank-1 weight
                // and bias updates in one sweep over the layer's rows.
                layer.weights.backprop_fused_into(
                    &scratch.delta,
                    input,
                    -lr,
                    &mut layer.bias,
                    &mut scratch.back,
                )?;
                std::mem::swap(&mut scratch.delta, &mut scratch.back);
            } else {
                // Input layer: nothing to propagate, only the updates.
                layer
                    .weights
                    .rank1_bias_update(&scratch.delta, input, -lr, &mut layer.bias)?;
            }
        }
        Ok(loss)
    }

    /// Trains for `epochs` sweeps over the data set; returns the mean
    /// loss of the final epoch.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for empty or mismatched
    /// data.
    pub fn train(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        epochs: usize,
        lr: f64,
    ) -> Result<f64, AnnError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(AnnError::BadTrainingSet(format!(
                "{} inputs vs {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        self.train_pairs(
            inputs.len(),
            |i| (inputs[i].as_slice(), targets[i].as_slice()),
            epochs,
            lr,
        )
    }

    /// [`Mlp::train`] on sample matrices (one sample per row): the
    /// same sweep order and updates, without a `Vec<Vec<f64>>` copy of
    /// the data.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for empty or mismatched
    /// data.
    pub fn train_matrix(
        &mut self,
        inputs: &Matrix,
        targets: &Matrix,
        epochs: usize,
        lr: f64,
    ) -> Result<f64, AnnError> {
        if inputs.rows() == 0 || inputs.rows() != targets.rows() {
            return Err(AnnError::BadTrainingSet(format!(
                "{} inputs vs {} targets",
                inputs.rows(),
                targets.rows()
            )));
        }
        self.train_pairs(
            inputs.rows(),
            |i| (inputs.row(i), targets.row(i)),
            epochs,
            lr,
        )
    }

    /// Shared epoch loop over an indexed `(input, target)` accessor.
    /// One scratch set serves the whole run, so after the first sample
    /// no step allocates.
    fn train_pairs<'a>(
        &mut self,
        n: usize,
        pair: impl Fn(usize) -> (&'a [f64], &'a [f64]),
        epochs: usize,
        lr: f64,
    ) -> Result<f64, AnnError> {
        let mut scratch = MlpTrainScratch::default();
        let mut last = 0.0;
        for _ in 0..epochs {
            last = 0.0;
            for i in 0..n {
                let (x, t) = pair(i);
                last += self.sgd_step_into(x, t, lr, &mut scratch)?;
            }
            last /= n as f64;
        }
        Ok(last)
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Layer `index`'s `out × in` weights and bias (compile-time weight
    /// packing reads these; see `crate::compiled`).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for an out-of-range
    /// index.
    pub(crate) fn layer(&self, index: usize) -> Result<(&Matrix, &[f64]), AnnError> {
        let layer = self.layers.get(index).ok_or_else(|| {
            AnnError::dims(
                format!("layer index < {}", self.layers.len()),
                format!("{index}"),
            )
        })?;
        Ok((&layer.weights, &layer.bias))
    }

    /// Replaces layer `index`'s weights with pre-trained values (DBN
    /// pre-training hand-off). Shapes must match.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when shapes differ or the
    /// index is out of range.
    pub fn load_layer(
        &mut self,
        index: usize,
        weights: Matrix,
        bias: Vec<f64>,
    ) -> Result<(), AnnError> {
        if index >= self.layers.len() {
            return Err(AnnError::dims(
                format!("layer index < {}", self.layers.len()),
                format!("{index}"),
            ));
        }
        let layer = &mut self.layers[index];
        if weights.rows() != layer.weights.rows()
            || weights.cols() != layer.weights.cols()
            || bias.len() != layer.bias.len()
        {
            return Err(AnnError::dims(
                format!("{}x{} weights", layer.weights.rows(), layer.weights.cols()),
                format!("{}x{}", weights.rows(), weights.cols()),
            ));
        }
        layer.weights = weights;
        layer.bias = bias;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;

    #[test]
    fn learns_xor() {
        let mut rng = seeded(5);
        let mut mlp = Mlp::new(&[2, 6, 1], &mut rng).unwrap();
        let inputs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let targets = vec![vec![0.05], vec![0.95], vec![0.95], vec![0.05]];
        let loss = mlp.train(&inputs, &targets, 4000, 0.8).unwrap();
        assert!(loss < 0.01, "XOR loss {loss}");
        assert!(mlp.forward(&[0.0, 1.0]).unwrap()[0] > 0.7);
        assert!(mlp.forward(&[1.0, 1.0]).unwrap()[0] < 0.3);
    }

    #[test]
    fn training_reduces_loss_on_regression() {
        let mut rng = seeded(6);
        let mut mlp = Mlp::new(&[1, 8, 1], &mut rng).unwrap();
        let inputs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 31.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![0.2 + 0.6 * x[0]]).collect();
        let first = mlp.train(&inputs, &targets, 1, 0.5).unwrap();
        let last = mlp.train(&inputs, &targets, 500, 0.5).unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(last < 1e-3);
    }

    #[test]
    fn shapes_and_validation() {
        let mut rng = seeded(7);
        assert!(Mlp::new(&[3], &mut rng).is_err());
        assert!(Mlp::new(&[3, 0, 1], &mut rng).is_err());
        let mut mlp = Mlp::new(&[3, 4, 2], &mut rng).unwrap();
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert!(mlp.forward(&[0.0; 2]).is_err());
        assert!(mlp.sgd_step(&[0.0; 3], &[0.0; 1], 0.1).is_err());
        assert!(mlp.train(&[], &[], 1, 0.1).is_err());
    }

    #[test]
    fn outputs_live_in_unit_interval() {
        let mut rng = seeded(8);
        let mlp = Mlp::new(&[4, 5, 3], &mut rng).unwrap();
        let y = mlp.forward(&[10.0, -10.0, 3.0, 0.0]).unwrap();
        assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn load_layer_checks_shape_and_index() {
        let mut rng = seeded(9);
        let mut mlp = Mlp::new(&[3, 4, 1], &mut rng).unwrap();
        assert_eq!(mlp.layer_count(), 2);
        let ok = Matrix::zeros(4, 3);
        assert!(mlp.load_layer(0, ok, vec![0.0; 4]).is_ok());
        let bad = Matrix::zeros(4, 2);
        assert!(mlp.load_layer(0, bad, vec![0.0; 4]).is_err());
        assert!(mlp.load_layer(5, Matrix::zeros(1, 4), vec![0.0]).is_err());
    }

    #[test]
    fn forward_batch_is_bitwise_per_sample_forward() {
        let mut rng = seeded(11);
        let mlp = Mlp::new(&[7, 40, 35, 3], &mut rng).unwrap();
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| (0..7).map(|j| ((i * 7 + j) as f64).sin()).collect())
            .collect();
        let batch = mlp.forward_batch(&xs).unwrap();
        assert_eq!(batch.len(), xs.len());
        for (x, y) in xs.iter().zip(&batch) {
            assert_eq!(y, &mlp.forward(x).unwrap());
        }
        assert!(mlp.forward_batch(&[vec![0.0; 2]]).is_err());
        assert!(mlp.forward_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn forward_into_is_bitwise_forward_and_reuses_buffers() {
        let mut rng = seeded(12);
        let mlp = Mlp::new(&[5, 9, 4, 2], &mut rng).unwrap();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for i in 0..8 {
            let x: Vec<f64> = (0..5).map(|j| ((i * 5 + j) as f64).cos()).collect();
            mlp.forward_into(&x, &mut scratch, &mut out).unwrap();
            assert_eq!(out, mlp.forward(&x).unwrap(), "sample {i}");
        }
        assert!(mlp.forward_into(&[0.0; 3], &mut scratch, &mut out).is_err());
    }

    #[test]
    fn forward_batch_matrix_matches_row_batch() {
        let mut rng = seeded(13);
        let mlp = Mlp::new(&[4, 6, 3], &mut rng).unwrap();
        let xs: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..4).map(|j| ((i + j) as f64).sin()).collect())
            .collect();
        let rows = mlp.forward_batch(&xs).unwrap();
        let m = mlp
            .forward_batch_matrix(&Matrix::from_rows(&xs).unwrap())
            .unwrap();
        assert_eq!((m.rows(), m.cols()), (10, 3));
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(m.row(r), row.as_slice(), "row {r}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let inputs = vec![vec![0.1], vec![0.9]];
        let targets = vec![vec![0.9], vec![0.1]];
        let run = || {
            let mut rng = seeded(10);
            let mut mlp = Mlp::new(&[1, 3, 1], &mut rng).unwrap();
            mlp.train(&inputs, &targets, 50, 0.5).unwrap();
            mlp.forward(&[0.5]).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn train_matrix_is_bitwise_train() {
        let inputs: Vec<Vec<f64>> = (0..12)
            .map(|i| (0..3).map(|j| ((i * 3 + j) as f64).sin()).collect())
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![0.1 + 0.4 * x[0].abs(), 0.9 - 0.3 * x[1].abs()])
            .collect();
        let mut a = Mlp::new(&[3, 9, 2], &mut seeded(15)).unwrap();
        let loss_a = a.train(&inputs, &targets, 20, 0.4).unwrap();
        let mut b = Mlp::new(&[3, 9, 2], &mut seeded(15)).unwrap();
        let loss_b = b
            .train_matrix(
                &Matrix::from_rows(&inputs).unwrap(),
                &Matrix::from_rows(&targets).unwrap(),
                20,
                0.4,
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(loss_a.to_bits(), loss_b.to_bits());
        assert!(b
            .train_matrix(&Matrix::zeros(0, 3), &Matrix::zeros(0, 2), 1, 0.1)
            .is_err());
        assert!(b
            .train_matrix(&Matrix::zeros(4, 3), &Matrix::zeros(3, 2), 1, 0.1)
            .is_err());
    }
}
