//! Distillation of a trained [`Dbn`] into a branch-free decision-tree
//! artifact.
//!
//! The compiled DBN path (`crate::compiled`) is latency-bound on three
//! *serial* sigmoid chains — no further SIMD on the same network shape
//! helps. This module changes the shape instead: it samples the trained
//! teacher over the feature box induced by its input scaler (plus any
//! caller-supplied trajectory samples) and fits a *linear model tree*:
//! one axis-aligned decision tree whose prediction is a fixed-count
//! walk of compares and loads followed by one small affine evaluation
//! per output — zero transcendentals, and far less arithmetic than even
//! one 16-wide sigmoid layer.
//!
//! The tree is *feature-partitioned by level* to expose the scheduler's
//! period structure: the top `depth_const` levels split only on the
//! run-constant prefix of the feature vector (the previous-period solar
//! powers, which are trace-derived and known for the whole run), the
//! bottom `depth_vary` levels only on the remaining, per-decision
//! features (supercapacitor voltages, accumulated DMR). A caller that
//! knows the constant prefix for a period calls
//! [`DistilledPolicy::prewalk`] + [`DistilledPolicy::fold`] once per
//! period — folding every constant feature's affine contribution into
//! per-leaf intercepts, the decision-tree analogue of the compiled
//! path's layer-0 partial-sum fold — and then
//! [`DistilledPolicy::predict_folded`] per decision, paying only
//! `depth_vary` compares plus `out_dim × |varying|` multiply-adds on
//! the hot path.
//!
//! The artifact is plain data (`serde`-serialisable, no host-specific
//! probes), so a fleet can build it once and share it `Arc`-style or
//! ship it between hosts; reloads predict bit-identically.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dbn::{Dbn, PredictScratch};
use crate::error::AnnError;
use crate::matrix::Matrix;


/// Hyper-parameters for [`DistilledPolicy::distill`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Tree levels that split on the run-constant feature prefix
    /// `[0, const_prefix)`. May be 0 when there is no constant prefix.
    pub depth_const: usize,
    /// Tree levels that split on the varying features
    /// `[const_prefix, in_dim)`.
    pub depth_vary: usize,
    /// Number of box samples drawn uniformly over the teacher's fitted
    /// input range (widened by `range_expand`).
    pub samples: usize,
    /// Candidate split thresholds per feature, taken at sample
    /// quantiles.
    pub candidates: usize,
    /// Fractional widening of the sampled box beyond the teacher's
    /// fitted `[min, max]` range, so mildly out-of-range queries still
    /// land in trained regions.
    pub range_expand: f64,
    /// Each caller-supplied trajectory sample is replicated this many
    /// times, concentrating tree capacity on states the scheduler
    /// actually visits.
    pub extra_weight: usize,
    /// Ridge strength for the per-leaf affine fits (in standardised
    /// feature space, relative to the leaf sample count).
    pub ridge: f64,
    /// Fresh box samples held out to measure teacher/student decision
    /// agreement (stored in the artifact).
    pub holdout: usize,
    /// Deterministic seed for the sampling streams.
    pub seed: u64,
}

impl DistillConfig {
    /// A compact configuration adequate for the scheduler's ~13-input
    /// observation vectors; distils in well under a second.
    pub fn small(seed: u64) -> Self {
        Self {
            depth_const: 5,
            depth_vary: 5,
            samples: 32_768,
            candidates: 64,
            range_expand: 0.05,
            extra_weight: 4,
            ridge: 1e-4,
            holdout: 4_096,
            seed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] for an empty or oversized tree,
    /// too few samples/candidates, or non-finite widening/ridge.
    pub fn validate(&self) -> Result<(), AnnError> {
        let depth = self.depth_const + self.depth_vary;
        if depth == 0 || depth > 20 {
            return Err(AnnError::BadConfig(format!(
                "tree depth must be in 1..=20, got {depth}"
            )));
        }
        if self.samples < 64 {
            return Err(AnnError::BadConfig(format!(
                "need at least 64 distillation samples, got {}",
                self.samples
            )));
        }
        if self.candidates < 2 {
            return Err(AnnError::BadConfig(format!(
                "need at least 2 split candidates per feature, got {}",
                self.candidates
            )));
        }
        if self.extra_weight == 0 {
            return Err(AnnError::BadConfig(
                "extra_weight must be at least 1".into(),
            ));
        }
        if self.holdout == 0 {
            return Err(AnnError::BadConfig(
                "holdout must be at least 1 sample".into(),
            ));
        }
        if !self.range_expand.is_finite() || self.range_expand < 0.0 {
            return Err(AnnError::BadConfig(format!(
                "range_expand must be finite and non-negative, got {}",
                self.range_expand
            )));
        }
        if !self.ridge.is_finite() || self.ridge <= 0.0 {
            return Err(AnnError::BadConfig(format!(
                "ridge must be finite and positive, got {}",
                self.ridge
            )));
        }
        Ok(())
    }
}

/// A distilled decision policy: one complete binary tree in heap
/// layout (node `n` has children `2n+1` / `2n+2`), thresholds in *raw*
/// (unscaled) feature space, and a small affine model
/// `y = bias + coef · x` at every leaf.
///
/// Prediction is branch-free in the classic decision-tree sense: a
/// fixed-count loop of `load feature index → load threshold → compare →
/// index arithmetic`, compiled to conditional moves, then one dense
/// affine evaluation. No scaling, no transcendentals.
///
/// Levels `[0, depth_const)` split only on features
/// `[0, const_prefix)`; levels `[depth_const, depth)` split only on
/// features `[const_prefix, in_dim)`. See [`DistilledPolicy::prewalk`]
/// and [`DistilledPolicy::fold`] for the per-period fast path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistilledPolicy {
    in_dim: usize,
    out_dim: usize,
    const_prefix: usize,
    depth_const: u32,
    depth_vary: u32,
    /// Split feature per internal node; `(1 << depth) - 1` entries.
    feat: Vec<u32>,
    /// Split threshold per internal node (raw feature space). A node
    /// with threshold `f64::MAX` routes every finite input left
    /// (degenerate split from an under-populated region; `MAX` rather
    /// than `+inf` so the JSON asset form round-trips bytewise).
    thresh: Vec<f64>,
    /// Leaf intercepts, `1 << depth` rows of `out_dim` outputs, in the
    /// teacher's raw output space. Quantised to `f32` — the same
    /// precision tier as the compiled network's `F32` weights: leaf
    /// evaluation runs entirely in `f32` (the decision heads are
    /// rounded/thresholded, so the ~1e-7 relative quantisation noise
    /// is far below any decision boundary) and the hot loop loads half
    /// the bytes per feature.
    leaf_bias: Vec<f32>,
    /// Leaf affine coefficients, `1 << depth` rows of
    /// `in_dim × out_dim` (feature-major: all `out_dim` coefficients
    /// of feature 0, then feature 1, …), raw feature space, quantised
    /// to `f32` like the intercepts. Feature-major keeps the hot-path
    /// accumulation a contiguous `out_dim`-wide lane update per
    /// feature — independent accumulators the compiler vectorises —
    /// instead of `out_dim` serial dot-product dependency chains.
    leaf_coef: Vec<f32>,
    /// Teacher/student decision match rate on the held-out box sample,
    /// measured at distillation time.
    agreement: f64,
}

/// Where a leaf evaluation starts: the leaf's own f32 intercept row
/// (even chain; the odd chain starts at zero), or a per-period fold
/// row holding both chains' raw f32 partial sums over the constant
/// feature prefix (`2 * out_dim` wide: even chain first, odd chain
/// second).
#[derive(Clone, Copy)]
enum LeafInit<'a> {
    Bias,
    Folded(&'a [f32]),
}

/// [`LeafInit`] with the intercept row resolved.
#[derive(Clone, Copy)]
enum LeafInitRow<'a> {
    Bias(&'a [f32]),
    Folded(&'a [f32]),
}

impl DistilledPolicy {
    /// Distils `teacher` into a linear model tree.
    ///
    /// `const_prefix` is the number of leading features that are
    /// constant within a scheduling period (the previous-period solar
    /// powers); pass 0 when no such structure exists. `extra_samples`
    /// are raw feature vectors from real trajectories (golden-scenario
    /// states); each is replicated [`DistillConfig::extra_weight`]
    /// times so the tree concentrates capacity where the scheduler
    /// actually operates.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] for invalid hyper-parameters or
    /// a `const_prefix`/depth combination that leaves a tree section
    /// with no features to split on, and
    /// [`AnnError::DimensionMismatch`] for extra samples of the wrong
    /// width.
    pub fn distill(
        teacher: &Dbn,
        const_prefix: usize,
        extra_samples: &[Vec<f64>],
        cfg: &DistillConfig,
    ) -> Result<Self, AnnError> {
        cfg.validate()?;
        let in_dim = teacher.input_dim();
        let out_dim = teacher.output_dim();
        if const_prefix > in_dim {
            return Err(AnnError::BadConfig(format!(
                "const_prefix {const_prefix} exceeds input dim {in_dim}"
            )));
        }
        if cfg.depth_const > 0 && const_prefix == 0 {
            return Err(AnnError::BadConfig(
                "depth_const > 0 requires a nonzero const_prefix".into(),
            ));
        }
        if cfg.depth_vary > 0 && const_prefix == in_dim {
            return Err(AnnError::BadConfig(
                "depth_vary > 0 requires varying features beyond const_prefix".into(),
            ));
        }
        for s in extra_samples {
            if s.len() != in_dim {
                return Err(AnnError::dims(
                    format!("{in_dim} features"),
                    format!("{}", s.len()),
                ));
            }
        }

        // Sampling box: the teacher's fitted range, widened so mildly
        // out-of-range queries still land in trained regions. Constant
        // features (span 0) stay pinned.
        let mins = teacher.input_scaler().mins();
        let maxs = teacher.input_scaler().maxs();
        let mut lo = vec![0.0; in_dim];
        let mut hi = vec![0.0; in_dim];
        for i in 0..in_dim {
            let span = maxs[i] - mins[i];
            let pad = if span > 0.0 {
                span * cfg.range_expand
            } else {
                0.0
            };
            lo[i] = mins[i] - pad;
            hi[i] = maxs[i] + pad;
        }

        // Training set: box samples + weighted trajectory samples,
        // labelled by the teacher.
        let mut rng = helio_common::rng::derive(cfg.seed, "distill-box");
        let n = cfg.samples + extra_samples.len() * cfg.extra_weight;
        let mut xs = Matrix::zeros(n, in_dim);
        for r in 0..cfg.samples {
            let row = xs.row_mut(r);
            for i in 0..in_dim {
                let u: f64 = rng.gen();
                row[i] = lo[i] + u * (hi[i] - lo[i]);
            }
        }
        for (e, s) in extra_samples.iter().enumerate() {
            for w in 0..cfg.extra_weight {
                xs.row_mut(cfg.samples + e * cfg.extra_weight + w)
                    .copy_from_slice(s);
            }
        }
        let mut ys = Matrix::zeros(n, out_dim);
        let mut scratch = PredictScratch::default();
        let mut out = Vec::with_capacity(out_dim);
        for r in 0..n {
            teacher.predict_into(xs.row(r), &mut scratch, &mut out)?;
            ys.row_mut(r).copy_from_slice(&out);
        }

        // Global per-feature and per-output moments: features are
        // standardised inside the leaf fits (the raw scales differ by
        // orders of magnitude), outputs are weighted `1/std` in the
        // split criterion so a wide head (α spans 0..10) cannot crowd
        // out the near-binary task bits.
        let (feat_mean, feat_std) = column_moments(&xs, in_dim);
        let (_, out_std) = column_moments(&ys, out_dim);
        let out_weight: Vec<f64> = out_std
            .iter()
            .map(|s| if *s > 1e-9 { 1.0 / s } else { 1.0 })
            .collect();

        let depth = cfg.depth_const + cfg.depth_vary;
        let internal = (1usize << depth) - 1;
        let leaves = 1usize << depth;
        let mut fit = Fit {
            xs: &xs,
            ys: &ys,
            feat: vec![0; internal],
            thresh: vec![f64::MAX; internal],
            leaf_bias: vec![0.0; leaves * out_dim],
            leaf_coef: vec![0.0; leaves * out_dim * in_dim],
            depth,
            depth_const: cfg.depth_const,
            const_prefix,
            in_dim,
            out_dim,
            candidates: cfg.candidates,
            ridge: cfg.ridge,
            out_weight,
            feat_mean,
            feat_std,
        };
        let root_idx: Vec<usize> = (0..n).collect();
        let root_mean = column_means(&ys, &root_idx, out_dim);
        fit.grow(0, 0, root_idx, &root_mean);

        let mut policy = Self {
            in_dim,
            out_dim,
            const_prefix,
            depth_const: cfg.depth_const as u32,
            depth_vary: cfg.depth_vary as u32,
            feat: fit.feat,
            thresh: fit.thresh,
            // The ridge fits run in f64; the artifact keeps the f32
            // quantisation so the stored agreement below measures the
            // precision actually deployed.
            leaf_bias: fit.leaf_bias.iter().map(|&v| v as f32).collect(),
            leaf_coef: fit.leaf_coef.iter().map(|&v| v as f32).collect(),
            agreement: 0.0,
        };

        // Held-out agreement: fresh box samples, decision-level match
        // against the teacher (rounded heads, thresholded bits).
        let mut hold_rng = helio_common::rng::derive(cfg.seed, "distill-holdout");
        let mut x = vec![0.0; in_dim];
        let mut student = Vec::with_capacity(out_dim);
        let mut matches = 0usize;
        for _ in 0..cfg.holdout {
            for i in 0..in_dim {
                let u: f64 = hold_rng.gen();
                x[i] = lo[i] + u * (hi[i] - lo[i]);
            }
            teacher.predict_into(&x, &mut scratch, &mut out)?;
            policy.predict_into(&x, &mut student)?;
            if decisions_match(&out, &student) {
                matches += 1;
            }
        }
        policy.agreement = matches as f64 / cfg.holdout as f64;
        Ok(policy)
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of leading features treated as period-constant.
    pub fn const_prefix(&self) -> usize {
        self.const_prefix
    }

    /// Total tree depth (constant + varying levels).
    pub fn depth(&self) -> usize {
        (self.depth_const + self.depth_vary) as usize
    }

    /// Tree levels walked by [`DistilledPolicy::prewalk`].
    pub fn depth_const_levels(&self) -> usize {
        self.depth_const as usize
    }

    /// Tree levels walked by [`DistilledPolicy::predict_folded`].
    pub fn depth_vary_levels(&self) -> usize {
        self.depth_vary as usize
    }

    /// Length of the per-period fold buffer written by
    /// [`DistilledPolicy::fold`]: one partial-sum row per leaf under a
    /// prewalk cursor, each `2 * out_dim` wide (the even-indexed and
    /// odd-indexed feature chains of the two-chain accumulation are
    /// folded separately, as raw f32 partials, so the finish resumes
    /// both bit-exactly with no narrowing work).
    pub fn fold_len(&self) -> usize {
        (1usize << self.depth_vary) * 2 * self.out_dim
    }

    /// Teacher/student decision match rate on the distillation holdout
    /// (1.0 = every held-out sample produced the identical decision).
    pub fn agreement(&self) -> f64 {
        self.agreement
    }

    fn internal_nodes(&self) -> usize {
        (1usize << self.depth()) - 1
    }

    /// Walks the `depth_const` constant levels of the tree for one
    /// period. Only features `[0, const_prefix)` of `x` are read, so a
    /// slice holding just the constant prefix is accepted. The returned
    /// cursor is valid for [`DistilledPolicy::fold`] /
    /// [`DistilledPolicy::predict_folded`] on any query sharing the
    /// same constant prefix — cache it once per period.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x` is shorter than
    /// `const_prefix`.
    #[inline]
    pub fn prewalk(&self, x: &[f64]) -> Result<u32, AnnError> {
        if x.len() < self.const_prefix {
            return Err(Self::prefix_err(self.const_prefix, x.len()));
        }
        let mut n = 0usize;
        for _ in 0..self.depth_const {
            let f = self.feat[n] as usize;
            n = 2 * n + 1 + usize::from(x[f] > self.thresh[n]);
        }
        Ok(n as u32)
    }

    /// Cold constructors for the hot-path dimension errors: keeping the
    /// `format!` machinery out of line is what lets the walk/evaluate
    /// bodies inline into their per-decision callers.
    #[cold]
    #[inline(never)]
    fn prefix_err(want: usize, got: usize) -> AnnError {
        AnnError::dims(format!("at least {want} features"), format!("{got}"))
    }

    #[cold]
    #[inline(never)]
    fn width_err(what: &str, want: usize, got: usize) -> AnnError {
        AnnError::dims(format!("{want} {what}"), format!("{got}"))
    }

    /// Folds the constant-prefix contribution of every leaf under
    /// `cursor` into per-leaf intercepts — the decision-tree analogue
    /// of the compiled path's per-period layer-0 partial-sum fold. Call
    /// once per period (cursor and constant features change only at
    /// period boundaries); `folded` is resized to
    /// [`DistilledPolicy::fold_len`] and is reusable across calls
    /// without reallocating. Only features `[0, const_prefix)` of `x`
    /// are read.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x` is shorter than
    /// `const_prefix` or `cursor` is out of range.
    #[inline]
    pub fn fold(&self, cursor: u32, x: &[f64], folded: &mut Vec<f32>) -> Result<(), AnnError> {
        if x.len() < self.const_prefix {
            return Err(Self::prefix_err(self.const_prefix, x.len()));
        }
        let m = self.cursor_offset(cursor)?;
        let vary_leaves = 1usize << self.depth_vary;
        let row = 2 * self.out_dim;
        folded.clear();
        folded.resize(self.fold_len(), 0.0);
        for rel in 0..vary_leaves {
            let leaf = m * vary_leaves + rel;
            // Each partial row holds the two raw f32 running chains,
            // so `predict_folded` resumes the flat path's accumulation
            // sequence bit for bit.
            self.accumulate_leaf_partial(
                leaf,
                self.const_prefix,
                x,
                &mut folded[rel * row..(rel + 1) * row],
            );
        }
        Ok(())
    }

    /// Finishes a prediction from a [`DistilledPolicy::prewalk`] cursor
    /// and its [`DistilledPolicy::fold`] buffer: walks the `depth_vary`
    /// varying levels and evaluates the leaf affine model over only the
    /// varying features `[const_prefix, in_dim)`. Allocation-free once
    /// `out` has grown to `out_dim` — this is the per-decision hot
    /// path. Bit-identical to [`DistilledPolicy::predict_into`] on the
    /// full feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x` or `folded`
    /// have the wrong width or `cursor` is out of range.
    #[inline]
    pub fn predict_folded(
        &self,
        cursor: u32,
        folded: &[f32],
        x: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        if x.len() != self.in_dim {
            return Err(Self::width_err("features", self.in_dim, x.len()));
        }
        if folded.len() != self.fold_len() {
            return Err(Self::width_err(
                "folded intercepts",
                self.fold_len(),
                folded.len(),
            ));
        }
        let m = self.cursor_offset(cursor)?;
        let mut n = cursor as usize;
        for _ in 0..self.depth_vary {
            let f = self.feat[n] as usize;
            n = 2 * n + 1 + usize::from(x[f] > self.thresh[n]);
        }
        let leaf = n - self.internal_nodes();
        let rel = leaf - m * (1usize << self.depth_vary);
        let od = self.out_dim;
        let row = 2 * od;
        out.clear();
        out.resize(od, 0.0);
        self.accumulate_leaf(
            leaf,
            self.const_prefix,
            self.in_dim,
            x,
            LeafInit::Folded(&folded[rel * row..(rel + 1) * row]),
            out,
        );
        Ok(())
    }

    /// Full prediction: constant walk, fold of the constant prefix into
    /// the leaf intercept, varying walk, affine finish — the same
    /// operations in the same order as the
    /// [`DistilledPolicy::prewalk`] / [`DistilledPolicy::fold`] /
    /// [`DistilledPolicy::predict_folded`] split, so both paths are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    #[inline(always)]
    pub fn predict_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        if x.len() != self.in_dim {
            return Err(Self::width_err("features", self.in_dim, x.len()));
        }
        let cursor = self.prewalk(x)?;
        let mut n = cursor as usize;
        for _ in 0..self.depth_vary {
            let f = self.feat[n] as usize;
            n = 2 * n + 1 + usize::from(x[f] > self.thresh[n]);
        }
        let leaf = n - self.internal_nodes();
        let od = self.out_dim;
        out.clear();
        out.resize(od, 0.0);
        // Feature-ascending two-chain accumulation — constant prefix
        // first, varying tail second, the exact operation sequence of
        // `fold` + `predict_folded` (each parity chain is a strictly
        // sequential f32 sum, so splitting both at any feature
        // boundary changes no rounding).
        self.accumulate_leaf(leaf, 0, self.in_dim, x, LeafInit::Bias, out);
        Ok(())
    }

    /// Allocating convenience wrapper over
    /// [`DistilledPolicy::predict_into`] (tests and one-off queries).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut out = Vec::with_capacity(self.out_dim);
        self.predict_into(x, &mut out)?;
        Ok(out)
    }

    /// Evaluates the leaf model `dst[d] = init[d] + Σ coef[t][d]·x[t]`
    /// over features `[t0, t1)` of leaf `leaf`, writing the combined
    /// f64-widened result into `dst` (length `out_dim`).
    ///
    /// The whole evaluation runs in `f32` (the artifact's storage
    /// precision) as **two independent accumulation chains** — one
    /// over even-indexed features, one over odd-indexed (parity of
    /// the *global* feature index, so any `[t0, t1)` window routes
    /// each feature to the same chain). A single strictly sequential
    /// chain of thirteen float adds per output was the latency floor;
    /// two chains halve the dependency depth and the CPU overlaps
    /// them. The even chain starts from the intercept, the odd chain
    /// from zero, and the output is the f32 sum `even + odd` widened
    /// to f64.
    ///
    /// [`DistilledPolicy::accumulate_leaf_partial`] stops the same
    /// accumulation at a feature boundary and stores both raw f32
    /// chains; resuming from them via [`LeafInit::Folded`] reproduces
    /// the unsplit evaluation bit for bit (each chain is a strictly
    /// sequential f32 sum, so splitting at any boundary changes no
    /// rounding).
    ///
    /// Dispatches to a const-width body for the scheduler's decision
    /// widths (the lane count known at compile time keeps the
    /// accumulators in registers with no per-feature vector-loop
    /// prologue).
    ///
    /// `inline(always)`: the callers are the (themselves inlined)
    /// predict bodies, and the out-of-line version pays a
    /// ten-register prologue per decision.
    #[inline(always)]
    fn accumulate_leaf(
        &self,
        leaf: usize,
        t0: usize,
        t1: usize,
        x: &[f64],
        init: LeafInit<'_>,
        dst: &mut [f64],
    ) {
        let od = self.out_dim;
        let lc = leaf * self.in_dim * od;
        let xs = &x[t0..t1];
        let coefs = &self.leaf_coef[lc + t0 * od..lc + t1 * od];
        let init = match init {
            LeafInit::Bias => LeafInitRow::Bias(&self.leaf_bias[leaf * od..(leaf + 1) * od]),
            LeafInit::Folded(row) => LeafInitRow::Folded(row),
        };
        match od {
            8 => Self::leaf_rows_fixed::<8>(coefs, xs, t0, init, dst),
            10 => Self::leaf_rows_fixed::<10>(coefs, xs, t0, init, dst),
            12 => Self::leaf_rows_fixed::<12>(coefs, xs, t0, init, dst),
            16 => Self::leaf_rows_fixed::<16>(coefs, xs, t0, init, dst),
            _ => Self::leaf_rows_dyn(coefs, xs, t0, init, dst),
        }
    }

    /// The fold-building counterpart of
    /// [`DistilledPolicy::accumulate_leaf`]: accumulates the leaf
    /// model over the constant prefix `[0, t_split)` and stores the
    /// two raw f32 chains into `dst` (length `2 * out_dim`: even
    /// chain first, odd chain second). Runs once per period per leaf,
    /// so it takes the lane-blocked dynamic body unconditionally.
    fn accumulate_leaf_partial(&self, leaf: usize, t_split: usize, x: &[f64], dst: &mut [f32]) {
        let od = self.out_dim;
        let lc = leaf * self.in_dim * od;
        let coefs = &self.leaf_coef[lc..lc + t_split * od];
        let bias = &self.leaf_bias[leaf * od..(leaf + 1) * od];
        const B: usize = 16;
        let mut lane = 0;
        while lane < od {
            let w = B.min(od - lane);
            let mut even = [0.0f32; B];
            let mut odd = [0.0f32; B];
            even[..w].copy_from_slice(&bias[lane..lane + w]);
            let mut it = coefs.chunks_exact(od).zip(&x[..t_split]);
            while let Some((row, &v)) = it.next() {
                let vf = v as f32;
                for (a, &c) in even[..w].iter_mut().zip(&row[lane..lane + w]) {
                    *a += c * vf;
                }
                let Some((row, &v)) = it.next() else { break };
                let vf = v as f32;
                for (a, &c) in odd[..w].iter_mut().zip(&row[lane..lane + w]) {
                    *a += c * vf;
                }
            }
            dst[lane..lane + w].copy_from_slice(&even[..w]);
            dst[od + lane..od + lane + w].copy_from_slice(&odd[..w]);
            lane += w;
        }
    }

    /// [`DistilledPolicy::accumulate_leaf`] body with the output
    /// width as a compile-time constant (`N == out_dim`).
    #[inline(always)]
    fn leaf_rows_fixed<const N: usize>(
        coefs: &[f32],
        xs: &[f64],
        t0: usize,
        init: LeafInitRow<'_>,
        dst: &mut [f64],
    ) {
        let mut even = [0.0f32; N];
        let mut odd = [0.0f32; N];
        match init {
            LeafInitRow::Bias(b) => even.copy_from_slice(&b[..N]),
            LeafInitRow::Folded(f) => {
                even.copy_from_slice(&f[..N]);
                odd.copy_from_slice(&f[N..2 * N]);
            }
        }
        // `chunks_exact` + slice zips: no per-iteration bounds checks
        // or iterator-adapter state, just one wide multiply-add block
        // per feature, alternating between the two chains.
        let mut it = coefs.chunks_exact(N).zip(xs);
        if t0 % 2 == 1 {
            if let Some((row, &v)) = it.next() {
                let vf = v as f32;
                for (a, &c) in odd.iter_mut().zip(row) {
                    *a += c * vf;
                }
            }
        }
        while let Some((row, &v)) = it.next() {
            let vf = v as f32;
            for (a, &c) in even.iter_mut().zip(row) {
                *a += c * vf;
            }
            let Some((row, &v)) = it.next() else { break };
            let vf = v as f32;
            for (a, &c) in odd.iter_mut().zip(row) {
                *a += c * vf;
            }
        }
        for ((d, &e), &o) in dst.iter_mut().zip(even.iter()).zip(odd.iter()) {
            *d = f64::from(e + o);
        }
    }

    /// [`DistilledPolicy::accumulate_leaf`] body for widths without a
    /// const-dispatched variant: output lanes are processed in
    /// register-resident blocks so the per-lane operation sequence —
    /// and therefore every rounding — matches the fixed bodies, and
    /// no scratch is allocated.
    fn leaf_rows_dyn(coefs: &[f32], xs: &[f64], t0: usize, init: LeafInitRow<'_>, dst: &mut [f64]) {
        const B: usize = 16;
        let od = dst.len();
        let mut lane = 0;
        while lane < od {
            let w = B.min(od - lane);
            let mut even = [0.0f32; B];
            let mut odd = [0.0f32; B];
            match init {
                LeafInitRow::Bias(b) => even[..w].copy_from_slice(&b[lane..lane + w]),
                LeafInitRow::Folded(f) => {
                    even[..w].copy_from_slice(&f[lane..lane + w]);
                    odd[..w].copy_from_slice(&f[od + lane..od + lane + w]);
                }
            }
            let mut it = coefs.chunks_exact(od).zip(xs);
            if t0 % 2 == 1 {
                if let Some((row, &v)) = it.next() {
                    let vf = v as f32;
                    for (a, &c) in odd[..w].iter_mut().zip(&row[lane..lane + w]) {
                        *a += c * vf;
                    }
                }
            }
            while let Some((row, &v)) = it.next() {
                let vf = v as f32;
                for (a, &c) in even[..w].iter_mut().zip(&row[lane..lane + w]) {
                    *a += c * vf;
                }
                let Some((row, &v)) = it.next() else { break };
                let vf = v as f32;
                for (a, &c) in odd[..w].iter_mut().zip(&row[lane..lane + w]) {
                    *a += c * vf;
                }
            }
            for ((d, &e), &o) in dst[lane..lane + w].iter_mut().zip(even.iter()).zip(odd.iter()) {
                *d = f64::from(e + o);
            }
            lane += w;
        }
    }

    /// Validates a cursor and returns its offset among the
    /// constant-level boundary nodes.
    #[inline]
    fn cursor_offset(&self, cursor: u32) -> Result<usize, AnnError> {
        let first = (1usize << self.depth_const) - 1;
        let n = cursor as usize;
        if n < first || n > 2 * first {
            return Err(Self::cursor_err(first, n));
        }
        Ok(n - first)
    }

    #[cold]
    #[inline(never)]
    fn cursor_err(first: usize, got: usize) -> AnnError {
        AnnError::dims(format!("cursor in [{first}, {}]", 2 * first), format!("{got}"))
    }

    /// Structural validation: every array has the advertised length,
    /// every node splits on a feature its level is allowed to read, and
    /// every leaf model is finite. Called on deserialisation so the
    /// indexing in the walk methods is panic-free on any artifact that
    /// passes.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), AnnError> {
        if self.in_dim == 0 || self.out_dim == 0 {
            return Err(AnnError::BadConfig("empty input or output dim".into()));
        }
        if self.const_prefix > self.in_dim {
            return Err(AnnError::BadConfig(format!(
                "const_prefix {} exceeds input dim {}",
                self.const_prefix, self.in_dim
            )));
        }
        let depth = self.depth();
        if depth == 0 || depth > 20 {
            return Err(AnnError::BadConfig(format!(
                "tree depth must be in 1..=20, got {depth}"
            )));
        }
        let internal = (1usize << depth) - 1;
        if self.feat.len() != internal || self.thresh.len() != internal {
            return Err(AnnError::BadConfig(format!(
                "expected {internal} internal nodes, got {} features / {} thresholds",
                self.feat.len(),
                self.thresh.len()
            )));
        }
        let leaves = 1usize << depth;
        if self.leaf_bias.len() != leaves * self.out_dim {
            return Err(AnnError::BadConfig(format!(
                "expected {} leaf intercepts, got {}",
                leaves * self.out_dim,
                self.leaf_bias.len()
            )));
        }
        if self.leaf_coef.len() != leaves * self.out_dim * self.in_dim {
            return Err(AnnError::BadConfig(format!(
                "expected {} leaf coefficients, got {}",
                leaves * self.out_dim * self.in_dim,
                self.leaf_coef.len()
            )));
        }
        for level in 0..depth {
            let (fl, fh) = if level < self.depth_const as usize {
                (0, self.const_prefix)
            } else {
                (self.const_prefix, self.in_dim)
            };
            let start = (1usize << level) - 1;
            let end = (1usize << (level + 1)) - 1;
            for n in start..end {
                let f = self.feat[n] as usize;
                if f < fl || f >= fh {
                    return Err(AnnError::BadConfig(format!(
                        "node {n} (level {level}) splits on feature {f}, allowed [{fl}, {fh})"
                    )));
                }
                if !self.thresh[n].is_finite() {
                    return Err(AnnError::BadConfig(format!(
                        "node {n} has non-finite threshold"
                    )));
                }
            }
        }
        if self.leaf_bias.iter().any(|v| !v.is_finite())
            || self.leaf_coef.iter().any(|v| !v.is_finite())
        {
            return Err(AnnError::BadConfig("non-finite leaf model".into()));
        }
        if !self.agreement.is_finite() || !(0.0..=1.0).contains(&self.agreement) {
            return Err(AnnError::BadConfig(format!(
                "agreement {} outside [0, 1]",
                self.agreement
            )));
        }
        Ok(())
    }

    /// Serialises the artifact to JSON (deployable policy asset).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] when serialisation fails (should
    /// not happen for well-formed artifacts).
    pub fn to_json(&self) -> Result<String, AnnError> {
        serde_json::to_string(self).map_err(|e| AnnError::BadConfig(e.to_string()))
    }

    /// Restores and validates an artifact serialised with
    /// [`DistilledPolicy::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] for malformed JSON or a
    /// structurally invalid artifact.
    pub fn from_json(json: &str) -> Result<Self, AnnError> {
        let policy: Self =
            serde_json::from_str(json).map_err(|e| AnnError::BadConfig(e.to_string()))?;
        policy.validate()?;
        Ok(policy)
    }
}

/// Decision-level equality between two raw output vectors: the first
/// two outputs (capacitor head, α head) compared after rounding to the
/// nearest integer, every remaining output (task-admission bits)
/// compared as a `>= 0.5` threshold — mirroring how the online planner
/// consumes the vector.
pub fn decisions_match(a: &[f64], b: &[f64]) -> bool {
    if a.len() != b.len() || a.len() < 2 {
        return false;
    }
    if a[0].round() != b[0].round() || a[1].round() != b[1].round() {
        return false;
    }
    a.iter()
        .zip(b.iter())
        .skip(2)
        .all(|(x, y)| (*x >= 0.5) == (*y >= 0.5))
}

fn column_means(ys: &Matrix, idx: &[usize], out_dim: usize) -> Vec<f64> {
    let mut mean = vec![0.0; out_dim];
    if idx.is_empty() {
        return mean;
    }
    for &r in idx {
        for (m, v) in mean.iter_mut().zip(ys.row(r)) {
            *m += v;
        }
    }
    let inv = 1.0 / idx.len() as f64;
    for m in &mut mean {
        *m *= inv;
    }
    mean
}

/// Per-column mean and standard deviation over all rows.
fn column_moments(m: &Matrix, cols: usize) -> (Vec<f64>, Vec<f64>) {
    let n = m.rows().max(1) as f64;
    let mut mean = vec![0.0; cols];
    let mut sq = vec![0.0; cols];
    for r in 0..m.rows() {
        for ((mu, q), v) in mean.iter_mut().zip(sq.iter_mut()).zip(m.row(r)) {
            *mu += v;
            *q += v * v;
        }
    }
    let mut std = vec![0.0; cols];
    for ((mu, q), s) in mean.iter_mut().zip(&sq).zip(std.iter_mut()) {
        *mu /= n;
        *s = (q / n - *mu * *mu).max(0.0).sqrt();
    }
    (mean, std)
}

/// Greedy CART fitter for the complete, level-feature-partitioned
/// linear model tree.
struct Fit<'a> {
    xs: &'a Matrix,
    ys: &'a Matrix,
    feat: Vec<u32>,
    thresh: Vec<f64>,
    leaf_bias: Vec<f64>,
    leaf_coef: Vec<f64>,
    depth: usize,
    depth_const: usize,
    const_prefix: usize,
    in_dim: usize,
    out_dim: usize,
    candidates: usize,
    ridge: f64,
    /// Per-output weights in the split criterion: `1 / std`, so a
    /// wide head (α spans 0..10) cannot crowd out the near-binary task
    /// bits when scoring variance reduction.
    out_weight: Vec<f64>,
    /// Global feature moments for standardised ridge fits.
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
}

impl Fit<'_> {
    fn grow(&mut self, node: usize, level: usize, idx: Vec<usize>, parent_mean: &[f64]) {
        let mean = if idx.is_empty() {
            parent_mean.to_vec()
        } else {
            column_means(self.ys, &idx, self.out_dim)
        };
        if level == self.depth {
            self.fit_leaf(node - ((1usize << self.depth) - 1), &idx, &mean);
            return;
        }
        let (fl, fh) = if level < self.depth_const {
            (0, self.const_prefix)
        } else {
            (self.const_prefix, self.in_dim)
        };
        match self.best_split(&idx, fl, fh) {
            Some((f, t)) => {
                self.feat[node] = f as u32;
                self.thresh[node] = t;
                let mut left = Vec::new();
                let mut right = Vec::new();
                for &r in &idx {
                    if self.xs.row(r)[f] > t {
                        right.push(r);
                    } else {
                        left.push(r);
                    }
                }
                self.grow(2 * node + 1, level + 1, left, &mean);
                self.grow(2 * node + 2, level + 1, right, &mean);
            }
            None => {
                // Degenerate region (too small or constant): route
                // everything left; the right subtree inherits the mean.
                // `f64::MAX` rather than `+inf` because the routing
                // rule is `x > thresh` and the JSON form (which maps
                // non-finite floats to null) must round-trip bytewise.
                self.feat[node] = fl as u32;
                self.thresh[node] = f64::MAX;
                self.grow(2 * node + 1, level + 1, idx, &mean);
                self.grow(2 * node + 2, level + 1, Vec::new(), &mean);
            }
        }
    }

    /// Ridge-fits `y ≈ bias + coef · x` over the leaf's samples in
    /// globally standardised feature space, then unfolds the model back
    /// to raw space. Under-populated leaves keep the (ancestor) mean
    /// with zero slope.
    fn fit_leaf(&mut self, leaf: usize, idx: &[usize], mean: &[f64]) {
        let bias_base = leaf * self.out_dim;
        let p = self.in_dim;
        let dims = p + 1; // intercept last
        let nl = idx.len();
        // Fewer samples than model dims: fall back to the mean.
        if nl < dims + 2 {
            self.leaf_bias[bias_base..bias_base + self.out_dim].copy_from_slice(mean);
            return;
        }
        // Normal equations in z-space: G = Zᵀ Z + λ n I, b_d = Zᵀ y_d.
        let mut g = vec![0.0; dims * dims];
        let mut b = vec![0.0; dims * self.out_dim];
        let mut z = vec![0.0; dims];
        for &r in idx {
            let xr = self.xs.row(r);
            for i in 0..p {
                z[i] = if self.feat_std[i] > 1e-12 {
                    (xr[i] - self.feat_mean[i]) / self.feat_std[i]
                } else {
                    0.0
                };
            }
            z[p] = 1.0;
            for i in 0..dims {
                let zi = z[i];
                if zi == 0.0 {
                    continue;
                }
                for j in i..dims {
                    g[i * dims + j] += zi * z[j];
                }
                for (d, v) in self.ys.row(r).iter().enumerate() {
                    b[d * dims + i] += zi * v;
                }
            }
        }
        for i in 0..dims {
            for j in 0..i {
                g[i * dims + j] = g[j * dims + i];
            }
            g[i * dims + i] += self.ridge * nl as f64;
        }
        let Some(chol) = cholesky(&g, dims) else {
            self.leaf_bias[bias_base..bias_base + self.out_dim].copy_from_slice(mean);
            return;
        };
        for d in 0..self.out_dim {
            let w = chol_solve(&chol, dims, &b[d * dims..(d + 1) * dims]);
            // Unfold z-space weights to raw space:
            //   y = w_p + Σ_i w_i (x_i - μ_i)/σ_i
            //     = (w_p - Σ_i w_i μ_i/σ_i) + Σ_i (w_i/σ_i) x_i.
            let lc = leaf * self.in_dim * self.out_dim;
            let mut bias = w[p];
            let mut ok = bias.is_finite();
            for (i, wi) in w.iter().enumerate().take(p) {
                let c = if self.feat_std[i] > 1e-12 {
                    wi / self.feat_std[i]
                } else {
                    0.0
                };
                ok &= c.is_finite();
                bias -= c * self.feat_mean[i];
                self.leaf_coef[lc + i * self.out_dim + d] = c;
            }
            if ok && bias.is_finite() {
                self.leaf_bias[bias_base + d] = bias;
            } else {
                self.leaf_bias[bias_base + d] = mean[d];
                for i in 0..p {
                    self.leaf_coef[lc + i * self.out_dim + d] = 0.0;
                }
            }
        }
    }

    /// Best axis-aligned split over features `[fl, fh)` by summed
    /// per-output variance reduction, evaluated at sample quantiles via
    /// one sorted sweep per feature. Returns `None` when no candidate
    /// separates the region.
    fn best_split(&self, idx: &[usize], fl: usize, fh: usize) -> Option<(usize, f64)> {
        let n = idx.len();
        if n < 2 || fl >= fh {
            return None;
        }
        let mut total = vec![0.0; self.out_dim];
        for &r in idx {
            for ((t, v), w) in total.iter_mut().zip(self.ys.row(r)).zip(&self.out_weight) {
                *t += v * w;
            }
        }
        let mut best: Option<(f64, usize, f64)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut left_sum = vec![0.0; self.out_dim];
        for f in fl..fh {
            order.clear();
            order.extend_from_slice(idx);
            order.sort_unstable_by(|&a, &b| self.xs.row(a)[f].total_cmp(&self.xs.row(b)[f]));
            left_sum.fill(0.0);
            // Candidate split positions at quantiles of this region.
            let mut next_cand = 1usize;
            let stride = (n / (self.candidates + 1)).max(1);
            for (k, &r) in order.iter().enumerate() {
                if k > 0 && k == next_cand * stride {
                    next_cand += 1;
                    let a = self.xs.row(order[k - 1])[f];
                    let b = self.xs.row(r)[f];
                    if a < b {
                        // Score = Σ_d (S_L²/n_L + S_R²/n_R); maximising
                        // this minimises the summed within-child SSE.
                        let nl = k as f64;
                        let nr = (n - k) as f64;
                        let mut score = 0.0;
                        for (sl, st) in left_sum.iter().zip(&total) {
                            let sr = st - sl;
                            score += sl * sl / nl + sr * sr / nr;
                        }
                        let mut t = a + (b - a) / 2.0;
                        if t >= b {
                            t = a;
                        }
                        if best.is_none_or(|(bs, _, _)| score > bs) {
                            best = Some((score, f, t));
                        }
                    }
                }
                for ((s, v), w) in left_sum.iter_mut().zip(self.ys.row(r)).zip(&self.out_weight) {
                    *s += v * w;
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

/// In-place Cholesky factorisation of a symmetric positive-definite
/// `dims × dims` matrix (row-major). Returns the lower factor, or
/// `None` when the matrix is not positive definite.
fn cholesky(g: &[f64], dims: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; dims * dims];
    for i in 0..dims {
        for j in 0..=i {
            let mut s = g[i * dims + j];
            for k in 0..j {
                s -= l[i * dims + k] * l[j * dims + k];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l[i * dims + i] = s.sqrt();
            } else {
                l[i * dims + j] = s / l[j * dims + j];
            }
        }
    }
    Some(l)
}

/// Solves `L Lᵀ w = b` given the lower Cholesky factor.
fn chol_solve(l: &[f64], dims: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; dims];
    for i in 0..dims {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * dims + k] * y[k];
        }
        y[i] = s / l[i * dims + i];
    }
    let mut w = vec![0.0; dims];
    for i in (0..dims).rev() {
        let mut s = y[i];
        for k in i + 1..dims {
            s -= l[k * dims + i] * w[k];
        }
        w[i] = s / l[i * dims + i];
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbn::DbnConfig;

    /// A scheduler-shaped teacher: 5 "power" features + 2 "voltages" +
    /// 1 "dmr", mapping to a cap head, an α head and two bits.
    fn teacher() -> Dbn {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400usize {
            let p = (i % 20) as f64 / 19.0;
            let v = ((i / 20) % 5) as f64 / 4.0;
            let d = ((i / 100) % 4) as f64 / 3.0;
            let x = vec![
                p * 40.0,
                (1.0 - p) * 35.0,
                p * 10.0,
                20.0 + p * 5.0,
                p * p * 30.0,
                2.0 + v * 2.5,
                2.1 + (1.0 - v) * 2.0,
                d,
            ];
            ys.push(vec![
                (p * 4.0).round(),
                (v * 8.0).round(),
                f64::from(p + v > 0.9),
                f64::from(d > 0.5),
            ]);
            xs.push(x);
        }
        let mut cfg = DbnConfig::small(13);
        cfg.bp_epochs = 120;
        Dbn::train(&xs, &ys, &cfg).unwrap()
    }

    fn small_cfg() -> DistillConfig {
        let mut cfg = DistillConfig::small(99);
        cfg.depth_const = 4;
        cfg.depth_vary = 4;
        cfg.samples = 8_192;
        cfg.holdout = 1_024;
        cfg
    }

    #[test]
    #[ignore = "diagnostic sweep for picking default hyper-parameters"]
    fn agreement_sweep() {
        let dbn = teacher();
        for (dc, dv, samples, ridge, cand) in [
            (4usize, 4usize, 16_384usize, 1e-3f64, 32usize),
            (4, 4, 16_384, 1e-4, 32),
            (4, 4, 16_384, 1e-5, 64),
            (5, 5, 32_768, 1e-4, 32),
            (5, 5, 65_536, 1e-4, 64),
            (5, 4, 32_768, 1e-4, 64),
        ] {
            let mut cfg = DistillConfig::small(99);
            cfg.depth_const = dc;
            cfg.depth_vary = dv;
            cfg.samples = samples;
            cfg.ridge = ridge;
            cfg.candidates = cand;
            cfg.holdout = 2_048;
            let p = DistilledPolicy::distill(&dbn, 5, &[], &cfg).unwrap();
            println!(
                "dc={dc} dv={dv} n={samples} ridge={ridge} cand={cand} -> agreement {}",
                p.agreement()
            );
        }
    }

    #[test]
    fn distills_with_high_agreement() {
        let dbn = teacher();
        let policy = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        assert_eq!(policy.input_dim(), 8);
        assert_eq!(policy.output_dim(), 4);
        assert!(
            policy.agreement() > 0.75,
            "holdout agreement {}",
            policy.agreement()
        );
        policy.validate().unwrap();
    }

    #[test]
    fn folded_path_is_bitwise_predict_into() {
        let dbn = teacher();
        let policy = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        let x = [30.0, 10.0, 7.5, 22.0, 15.0, 3.0, 3.5, 0.4];
        let mut whole = Vec::new();
        policy.predict_into(&x, &mut whole).unwrap();
        let cursor = policy.prewalk(&x).unwrap();
        let mut folded = Vec::new();
        policy.fold(cursor, &x, &mut folded).unwrap();
        assert_eq!(folded.len(), policy.fold_len());
        // The per-decision finish must not read the constant prefix:
        // poison it.
        let mut x_poisoned = x;
        for v in &mut x_poisoned[..5] {
            *v = f64::NAN;
        }
        let mut split = Vec::new();
        policy
            .predict_folded(cursor, &folded, &x_poisoned, &mut split)
            .unwrap();
        assert_eq!(whole, split);
    }

    #[test]
    fn prewalk_and_fold_accept_the_bare_prefix() {
        let dbn = teacher();
        let policy = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        let full = [30.0, 10.0, 7.5, 22.0, 15.0, 3.0, 3.5, 0.4];
        let a = policy.prewalk(&full).unwrap();
        let b = policy.prewalk(&full[..5]).unwrap();
        assert_eq!(a, b);
        assert!(policy.prewalk(&full[..3]).is_err());
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        policy.fold(a, &full, &mut fa).unwrap();
        policy.fold(a, &full[..5], &mut fb).unwrap();
        assert_eq!(fa, fb);
        assert!(policy.fold(a, &full[..3], &mut fa).is_err());
        assert!(policy.fold(0, &full, &mut fa).is_err());
    }

    #[test]
    fn trajectory_samples_sharpen_local_accuracy() {
        let dbn = teacher();
        let traj: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                let p = i as f64 / 63.0;
                vec![
                    p * 40.0,
                    (1.0 - p) * 35.0,
                    p * 10.0,
                    20.0 + p * 5.0,
                    p * p * 30.0,
                    3.2,
                    3.1,
                    0.25,
                ]
            })
            .collect();
        let plain = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        let tuned = DistilledPolicy::distill(&dbn, 5, &traj, &small_cfg()).unwrap();
        let mut scratch = PredictScratch::default();
        let mut want = Vec::new();
        let mut err = |p: &DistilledPolicy| {
            let mut e = 0.0f64;
            let mut got = Vec::new();
            for x in &traj {
                dbn.predict_into(x, &mut scratch, &mut want).unwrap();
                p.predict_into(x, &mut got).unwrap();
                for (w, g) in want.iter().zip(&got) {
                    e += (w - g).abs();
                }
            }
            e
        };
        let e_plain = err(&plain);
        let e_tuned = err(&tuned);
        assert!(
            e_tuned <= e_plain * 1.05,
            "trajectory weighting should not hurt local accuracy: {e_tuned} vs {e_plain}"
        );
    }

    #[test]
    fn json_round_trip_is_bytewise_and_deterministic() {
        let dbn = teacher();
        let policy = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        let json = policy.to_json().unwrap();
        let back = DistilledPolicy::from_json(&json).unwrap();
        assert_eq!(policy, back);
        assert_eq!(json, back.to_json().unwrap());
        let x = [12.0, 20.0, 3.0, 21.0, 8.0, 2.5, 4.0, 0.9];
        assert_eq!(
            policy.predict(&x).unwrap(),
            back.predict(&x).unwrap(),
            "reloaded artifact must predict bit-identically"
        );
    }

    #[test]
    fn distill_is_deterministic() {
        let dbn = teacher();
        let a = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        let b = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_configs_and_artifacts() {
        let dbn = teacher();
        let mut cfg = small_cfg();
        cfg.depth_const = 0;
        cfg.depth_vary = 0;
        assert!(DistilledPolicy::distill(&dbn, 5, &[], &cfg).is_err());
        let mut cfg = small_cfg();
        cfg.samples = 8;
        assert!(DistilledPolicy::distill(&dbn, 5, &[], &cfg).is_err());
        assert!(DistilledPolicy::distill(&dbn, 99, &[], &small_cfg()).is_err());
        assert!(DistilledPolicy::distill(&dbn, 0, &[], &small_cfg()).is_err());
        assert!(DistilledPolicy::distill(&dbn, 5, &[vec![1.0]], &small_cfg()).is_err());

        let policy = DistilledPolicy::distill(&dbn, 5, &[], &small_cfg()).unwrap();
        let mut broken = policy.clone();
        broken.feat[0] = 7; // varying feature at a constant level
        assert!(broken.validate().is_err());
        let mut broken = policy.clone();
        broken.leaf_bias.pop();
        assert!(broken.validate().is_err());
        let mut broken = policy.clone();
        broken.leaf_coef[0] = f32::INFINITY;
        assert!(broken.validate().is_err());
        let mut broken = policy;
        broken.thresh[0] = f64::NAN;
        assert!(broken.validate().is_err());
    }

    #[test]
    fn degenerate_regions_fall_back_to_ancestor_means() {
        // A teacher over a tiny box: most tree regions see no samples,
        // exercising the +inf degenerate-split path end to end.
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![i as f64 / 79.0, 0.5, (i % 7) as f64 / 6.0])
            .collect();
        let ys: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| vec![x[0], 1.0 - x[0], f64::from(x[2] > 0.5)])
            .collect();
        let mut cfg = DbnConfig::small(5);
        cfg.bp_epochs = 60;
        let dbn = Dbn::train(&xs, &ys, &cfg).unwrap();
        let mut dcfg = DistillConfig::small(7);
        dcfg.depth_const = 5;
        dcfg.depth_vary = 5;
        dcfg.samples = 256;
        dcfg.holdout = 64;
        let policy = DistilledPolicy::distill(&dbn, 1, &[], &dcfg).unwrap();
        policy.validate().unwrap();
        // Far outside the box still lands on a finite leaf model.
        let y = policy.predict(&[1e6, -1e6, 1e6]).unwrap();
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn decisions_match_mirrors_planner_consumption() {
        assert!(decisions_match(
            &[2.2, 5.4, 0.9, 0.1],
            &[1.8, 4.6, 0.51, 0.49]
        ));
        assert!(!decisions_match(&[2.6, 5.0, 0.9], &[1.8, 5.0, 0.9]));
        assert!(!decisions_match(&[2.0, 5.0, 0.6], &[2.0, 5.0, 0.4]));
        assert!(!decisions_match(&[2.0, 5.0], &[2.0, 5.0, 0.4]));
        assert!(!decisions_match(&[1.0], &[1.0]));
    }
}
