//! Property tests of the ANN substrate.

use helio_ann::{Dbn, DbnConfig, Matrix, MinMaxScaler, Mlp};
use helio_common::rng::seeded;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scaler transform/inverse is the identity on in-range data.
    #[test]
    fn scaler_round_trips(
        samples in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 3),
            2..20,
        ),
        pick in 0usize..100,
    ) {
        let scaler = MinMaxScaler::fit(&samples).expect("valid set");
        let sample = &samples[pick % samples.len()];
        let t = scaler.transform(sample).expect("dims match");
        prop_assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = scaler.inverse(&t).expect("dims match");
        for (a, b) in sample.iter().zip(&back) {
            // Constant features collapse to their single value.
            prop_assert!((a - b).abs() < 1e-9 || t.contains(&0.5));
        }
    }

    /// Matrix matvec is linear: A(x + y) = Ax + Ay.
    #[test]
    fn matvec_is_linear(
        seed in 0u64..1000,
        x in prop::collection::vec(-5.0f64..5.0, 4),
        y in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let m = Matrix::random(3, 4, 1.0, &mut seeded(seed));
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum).expect("dims");
        let ax = m.matvec(&x).expect("dims");
        let ay = m.matvec(&y).expect("dims");
        for i in 0..3 {
            prop_assert!((lhs[i] - ax[i] - ay[i]).abs() < 1e-9);
        }
    }

    /// MLP outputs always live in [0, 1] regardless of input scale.
    #[test]
    fn mlp_outputs_bounded(
        seed in 0u64..1000,
        input in prop::collection::vec(-1e3f64..1e3, 5),
    ) {
        let mlp = Mlp::new(&[5, 7, 3], &mut seeded(seed)).expect("valid sizes");
        let out = mlp.forward(&input).expect("dims");
        prop_assert_eq!(out.len(), 3);
        prop_assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// DBN predictions stay within the target range it was fitted on.
    #[test]
    fn dbn_predictions_stay_in_target_range(query in 0.0f64..60.0) {
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![i as f64 * 2.5]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![3.0 + x[0] / 10.0]).collect();
        let mut cfg = DbnConfig::small(9);
        cfg.bp_epochs = 40;
        let dbn = Dbn::train(&inputs, &targets, &cfg).expect("train");
        let y = dbn.predict(&[query]).expect("predict")[0];
        prop_assert!((3.0 - 1e-9..=8.75 + 1e-9).contains(&y), "prediction {} escaped", y);
    }
}
