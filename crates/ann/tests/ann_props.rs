//! Property tests of the ANN substrate.

#![allow(clippy::disallowed_methods)] // property tests exercise the allocating wrapper
use helio_ann::{AnnError, Dbn, DbnConfig, Matrix, MinMaxScaler, Mlp, Rbm, TrainingSet};
use helio_common::rng::seeded;
use proptest::prelude::*;

/// A random `n × dim` sample matrix with entries in `[0, 1]` (the
/// range CD-1 treats as probabilities).
fn sample_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
    let mut rng = seeded(seed ^ 0x5A17);
    let mut m = Matrix::zeros(n, dim);
    for r in 0..n {
        for v in m.row_mut(r) {
            *v = rand::Rng::gen::<f64>(&mut rng);
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scaler transform/inverse is the identity on in-range data.
    #[test]
    fn scaler_round_trips(
        samples in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 3),
            2..20,
        ),
        pick in 0usize..100,
    ) {
        let scaler = MinMaxScaler::fit(&samples).expect("valid set");
        let sample = &samples[pick % samples.len()];
        let t = scaler.transform(sample).expect("dims match");
        prop_assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = scaler.inverse(&t).expect("dims match");
        for (a, b) in sample.iter().zip(&back) {
            // Constant features collapse to their single value.
            prop_assert!((a - b).abs() < 1e-9 || t.contains(&0.5));
        }
    }

    /// Matrix matvec is linear: A(x + y) = Ax + Ay.
    #[test]
    fn matvec_is_linear(
        seed in 0u64..1000,
        x in prop::collection::vec(-5.0f64..5.0, 4),
        y in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let m = Matrix::random(3, 4, 1.0, &mut seeded(seed));
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum).expect("dims");
        let ax = m.matvec(&x).expect("dims");
        let ay = m.matvec(&y).expect("dims");
        for i in 0..3 {
            prop_assert!((lhs[i] - ax[i] - ay[i]).abs() < 1e-9);
        }
    }

    /// MLP outputs always live in [0, 1] regardless of input scale.
    #[test]
    fn mlp_outputs_bounded(
        seed in 0u64..1000,
        input in prop::collection::vec(-1e3f64..1e3, 5),
    ) {
        let mlp = Mlp::new(&[5, 7, 3], &mut seeded(seed)).expect("valid sizes");
        let out = mlp.forward(&input).expect("dims");
        prop_assert_eq!(out.len(), 3);
        prop_assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// The scratch-based RBM epoch loop is bit-for-bit the naive
    /// per-sample `cd1_step` loop, across random shapes, seeds, and
    /// learning rates (the contract the SIMD kernels must preserve).
    #[test]
    fn rbm_train_is_bitwise_per_sample_cd1(
        visible in 1usize..14,
        hidden in 1usize..12,
        n in 1usize..10,
        epochs in 1usize..4,
        seed in 0u64..1000,
        lr in 0.02f64..0.5,
    ) {
        let samples = sample_matrix(n, visible, seed);
        let mut rng_a = seeded(seed);
        let mut a = Rbm::new(visible, hidden, &mut rng_a);
        let mut b = a.clone();
        let mut rng_b = rng_a.clone();
        let loss_a = a.train_matrix(&samples, epochs, lr, &mut rng_a).expect("trains");
        let mut loss_b = 0.0;
        for _ in 0..epochs {
            loss_b = 0.0;
            for i in 0..n {
                loss_b += b.cd1_step(samples.row(i), lr, &mut rng_b).expect("steps");
            }
            loss_b /= n as f64;
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(loss_a.to_bits(), loss_b.to_bits());
    }

    /// The scratch-based MLP epoch loop is bit-for-bit the naive
    /// per-sample `sgd_step` loop, across random shapes and widths
    /// spanning the SIMD lane boundary.
    #[test]
    fn mlp_train_is_bitwise_per_sample_sgd(
        input in 1usize..14,
        hidden in 1usize..12,
        output in 1usize..6,
        n in 1usize..10,
        epochs in 1usize..4,
        seed in 0u64..1000,
        lr in 0.05f64..0.5,
    ) {
        let xs = sample_matrix(n, input, seed);
        let ys = sample_matrix(n, output, seed.wrapping_add(1));
        let mut rng = seeded(seed);
        let mut a = Mlp::new(&[input, hidden, output], &mut rng).expect("valid sizes");
        let mut b = a.clone();
        let loss_a = a.train_matrix(&xs, &ys, epochs, lr).expect("trains");
        let mut loss_b = 0.0;
        for _ in 0..epochs {
            loss_b = 0.0;
            for i in 0..n {
                loss_b += b.sgd_step(xs.row(i), ys.row(i), lr).expect("steps");
            }
            loss_b /= n as f64;
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(loss_a.to_bits(), loss_b.to_bits());
    }

    /// Mismatched or empty training sets are rejected with
    /// `BadTrainingSet` at every entry point, never a panic.
    #[test]
    fn bad_training_sets_are_rejected(
        n in 1usize..6,
        extra in 1usize..4,
        dim in 1usize..5,
    ) {
        let inputs = Matrix::zeros(n + extra, dim);
        let targets = Matrix::zeros(n, dim);
        prop_assert!(matches!(
            TrainingSet::new(inputs, targets),
            Err(AnnError::BadTrainingSet(_))
        ));
        let empty = TrainingSet::new(Matrix::zeros(0, dim), Matrix::zeros(0, dim))
            .expect("empty set packs");
        prop_assert!(matches!(
            Dbn::train_set(&empty, &DbnConfig::small(1)),
            Err(AnnError::BadTrainingSet(_))
        ));
        let ragged: Vec<Vec<f64>> = vec![vec![0.0; dim], vec![0.0; dim + 1]];
        let square: Vec<Vec<f64>> = vec![vec![0.0; dim], vec![0.0; dim]];
        prop_assert!(matches!(
            TrainingSet::from_rows(&ragged, &square),
            Err(AnnError::BadTrainingSet(_))
        ));
    }

    /// DBN predictions stay within the target range it was fitted on.
    #[test]
    fn dbn_predictions_stay_in_target_range(query in 0.0f64..60.0) {
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![i as f64 * 2.5]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![3.0 + x[0] / 10.0]).collect();
        let mut cfg = DbnConfig::small(9);
        cfg.bp_epochs = 40;
        let dbn = Dbn::train(&inputs, &targets, &cfg).expect("train");
        let y = dbn.predict(&[query]).expect("predict")[0];
        prop_assert!((3.0 - 1e-9..=8.75 + 1e-9).contains(&y), "prediction {} escaped", y);
    }
}
