//! Property tests of the distilled artifact's two contracts:
//!
//! * **Asset stability** — the JSON form round-trips bytewise and a
//!   reloaded artifact predicts bit-identically to the original, so a
//!   fleet resume (or a pre-built policy asset) can never drift from
//!   the in-process artifact.
//! * **Teacher agreement** — on randomized in-range feature vectors
//!   the student's decisions (rounded heads, thresholded admission
//!   bits) match the teacher's at a rate far above the recorded
//!   holdout floor's complement, pinning distillation quality.

use std::sync::OnceLock;

use helio_ann::{decisions_match, Dbn, DbnConfig, DistillConfig, DistilledPolicy, PredictScratch};
use proptest::prelude::*;

/// A scheduler-shaped teacher (13 → 16 → 10 → 10) and its distilled
/// student, built once: distillation is deterministic, so sharing the
/// fixture across property cases changes nothing but wall-clock.
fn fixture() -> &'static (Dbn, DistilledPolicy) {
    static FIX: OnceLock<(Dbn, DistilledPolicy)> = OnceLock::new();
    FIX.get_or_init(|| {
        // Decision-like targets (crisp heads and admission bits, the
        // way the scheduler's teacher behaves) rather than arbitrary
        // continuous values: agreement is a decision-level metric, so
        // a teacher that sits on the rounding boundaries everywhere
        // would make the property vacuous.
        let inputs: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                (0..13)
                    .map(|j| ((i * 13 + j) as f64 * 0.37).sin().abs() * 40.0)
                    .collect()
            })
            .collect();
        // All ten outputs depend on three input directions (two
        // constant-section features, one varying-section feature), the
        // way the scheduler's admissions track a few energy terms —
        // not ten independent boundaries no small tree could match.
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| {
                let mut t = vec![f64::from(x[0] > 20.0), f64::from(x[1] > 20.0)];
                t.extend((0..8).map(|j| {
                    let driver = if j % 2 == 0 { x[2] } else { x[10] };
                    f64::from(driver > if j % 2 == 0 { 18.0 } else { 22.0 })
                }));
                t
            })
            .collect();
        let mut cfg = DbnConfig::small(42);
        cfg.bp_epochs = 40;
        let dbn = Dbn::train(&inputs, &targets, &cfg).expect("teacher trains");
        let dcfg = DistillConfig {
            samples: 16384,
            candidates: 32,
            holdout: 1024,
            ..DistillConfig::small(77)
        };
        let policy = DistilledPolicy::distill(&dbn, 10, &[], &dcfg).expect("teacher distils");
        (dbn, policy)
    })
}

/// Maps a unit hypercube point into the teacher's fitted feature box.
fn in_range(dbn: &Dbn, unit: &[f64]) -> Vec<f64> {
    let mins = dbn.input_scaler().mins();
    let maxs = dbn.input_scaler().maxs();
    unit.iter()
        .enumerate()
        .map(|(i, &u)| mins[i] + u * (maxs[i] - mins[i]))
        .collect()
}

#[test]
fn artifact_json_round_trips_bytewise() {
    let (_, policy) = fixture();
    let json = policy.to_json().expect("serialises");
    let reloaded = DistilledPolicy::from_json(&json).expect("reloads");
    assert_eq!(
        json,
        reloaded.to_json().expect("re-serialises"),
        "JSON form must be a fixed point of save/load"
    );
}

#[test]
fn recorded_agreement_clears_the_quality_floor() {
    let (_, policy) = fixture();
    assert!(
        policy.agreement() >= 0.75,
        "holdout agreement {} below the distillation quality floor",
        policy.agreement()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A reloaded artifact is bit-identical in behaviour: `predict`
    /// returns the same bits before and after a JSON round trip, and
    /// the period-split path (prewalk → fold → predict_folded) lands
    /// on the same cursor and bits as the flat path.
    #[test]
    fn predict_is_deterministic_across_reloads(
        unit in prop::collection::vec(0.0f64..1.0, 13),
    ) {
        let (dbn, policy) = fixture();
        let x = in_range(dbn, &unit);
        let json = policy.to_json().expect("serialises");
        let reloaded = DistilledPolicy::from_json(&json).expect("reloads");
        let a = policy.predict(&x).expect("original predicts");
        let b = reloaded.predict(&x).expect("reload predicts");
        prop_assert_eq!(&a, &b, "reload drifted");

        let cur_a = policy.prewalk(&x).expect("prewalk");
        let cur_b = reloaded.prewalk(&x).expect("reload prewalk");
        prop_assert_eq!(cur_a, cur_b, "reload walked a different constant path");
        let mut folded = Vec::new();
        let mut out = Vec::new();
        reloaded.fold(cur_b, &x, &mut folded).expect("fold");
        reloaded
            .predict_folded(cur_b, &folded, &x, &mut out)
            .expect("folded predict");
        prop_assert_eq!(&a, &out, "period-split path drifted from the flat path");
    }

    /// Student decisions match the teacher's on batches of randomized
    /// in-range features — the live counterpart of the recorded
    /// holdout agreement.
    #[test]
    fn decisions_agree_with_the_teacher_on_random_features(
        units in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 13), 32),
    ) {
        let (dbn, policy) = fixture();
        let mut scratch = PredictScratch::default();
        let mut teacher_out = Vec::new();
        let mut student_out = Vec::new();
        let mut matches = 0usize;
        for unit in &units {
            let x = in_range(dbn, unit);
            dbn.predict_into(&x, &mut scratch, &mut teacher_out).expect("teacher predicts");
            policy.predict_into(&x, &mut student_out).expect("student predicts");
            if decisions_match(&teacher_out, &student_out) {
                matches += 1;
            }
        }
        let rate = matches as f64 / units.len() as f64;
        prop_assert!(
            rate >= 0.6,
            "decision match rate {rate} over {} random features below threshold",
            units.len()
        );
    }
}
