//! Property tests of the compiled forward's tolerance contract: for
//! random trained-shape networks and in-range inputs, every element of
//! `CompiledDbn::forward_into` stays within the tier's documented
//! bound of the f64 reference `Dbn::predict_into` — on both the SIMD
//! dispatch path and the forced-scalar fallback.

use helio_ann::{CompiledDbn, CompiledScratch, CompiledTier, Dbn, DbnConfig, PredictScratch};
use helio_common::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

/// Trains a small network of the given shape on a random bounded data
/// set (the same preconditions the planner's DBN meets: finite
/// features, outputs in `[0, 1]`-ish ranges after scaling) and
/// returns the training inputs alongside it.
fn train(in_dim: usize, hidden: Vec<usize>, out_dim: usize, seed: u64) -> (Dbn, Vec<Vec<f64>>) {
    let mut rng = seeded(seed ^ 0xC0DE);
    let n = 24;
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..in_dim)
                .map(|_| rng.gen::<f64>() * 50.0 - 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..out_dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let cfg = DbnConfig {
        hidden,
        rbm_epochs: 3,
        rbm_lr: 0.1,
        bp_epochs: 5,
        bp_lr: 0.4,
        seed,
    };
    let dbn = Dbn::train(&inputs, &targets, &cfg).expect("random bounded set trains");
    (dbn, inputs)
}

/// In-range probe inputs: convex combinations of training samples are
/// per-feature inside the fitted min/max by construction, so the
/// reference's input clamp is inactive and the de-clamped compiled
/// affine agrees with it on the whole probe set.
fn probes(samples: &[Vec<f64>], seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded(seed ^ 0x9B0B);
    (0..12)
        .map(|_| {
            let a = &samples[rng.gen::<u64>() as usize % samples.len()];
            let b = &samples[rng.gen::<u64>() as usize % samples.len()];
            let w = rng.gen::<f64>();
            a.iter().zip(b).map(|(&x, &y)| x + w * (y - x)).collect()
        })
        .collect()
}

fn max_rel_err(dbn: &Dbn, compiled: &CompiledDbn, inputs: &[Vec<f64>], scalar: bool) -> f64 {
    let mut scratch = compiled.make_scratch();
    let mut ref_scratch = PredictScratch::default();
    let mut fast = Vec::new();
    let mut reference = Vec::new();
    let mut worst = 0.0f64;
    for x in inputs {
        if scalar {
            compiled
                .forward_into_scalar(x, &mut scratch, &mut fast)
                .expect("forward");
        } else {
            compiled
                .forward_into(x, &mut scratch, &mut fast)
                .expect("forward");
        }
        dbn.predict_into(x, &mut ref_scratch, &mut reference)
            .expect("reference");
        // The contract normalises by max(1, output span); recover the
        // span bound from extreme sigmoid outputs via a second probe
        // is overkill — outputs of the trained nets here live in
        // [0, 1], so span <= 1 and the divisor is 1.
        for (a, b) in fast.iter().zip(&reference) {
            worst = worst.max((a - b).abs());
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both tiers, both kernel paths, random trained shapes spanning
    /// partial/full/multiple 16-lane tiles: element-wise error versus
    /// the f64 reference stays within the documented tolerance.
    #[test]
    fn compiled_forward_tracks_f64_reference(
        in_dim in 2usize..12,
        h1 in 1usize..20,
        h2 in 0usize..18,
        out_dim in 1usize..6,
        seed in 0u64..500,
    ) {
        // h2 == 0 means a single hidden layer.
        let hidden = if h2 > 0 { vec![h1, h2] } else { vec![h1] };
        let (dbn, samples) = train(in_dim, hidden, out_dim, seed);
        let inputs = probes(&samples, seed);
        for tier in [CompiledTier::F32, CompiledTier::Int8] {
            let compiled = CompiledDbn::compile(&dbn, tier).expect("compiles");
            let tol = compiled.tolerance();
            for scalar in [false, true] {
                let err = max_rel_err(&dbn, &compiled, &inputs, scalar);
                prop_assert!(
                    err <= tol,
                    "{tier:?} scalar={scalar}: err {err} > tolerance {tol}"
                );
            }
        }
    }

    /// A scratch shared across differently-shaped networks (the fleet
    /// reuses worker state) never corrupts results: outputs match a
    /// fresh pre-sized scratch exactly.
    #[test]
    fn shared_scratch_matches_fresh_scratch(
        in_dim in 2usize..10,
        h1 in 1usize..20,
        out_dim in 1usize..5,
        seed in 0u64..200,
    ) {
        let (big, _) = train(6, vec![24], 3, 7);
        let (small, _) = train(in_dim, vec![h1], out_dim, seed);
        let compiled_big = CompiledDbn::compile(&big, CompiledTier::F32).expect("compiles");
        let compiled_small = CompiledDbn::compile(&small, CompiledTier::F32).expect("compiles");
        let mut shared = CompiledScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        // Stretch the shared scratch on the wide network first…
        compiled_big
            .forward_into(&[10.0; 6], &mut shared, &mut a)
            .expect("forward");
        // …then reuse it on the smaller one.
        let x = vec![12.0; in_dim];
        compiled_small.forward_into(&x, &mut shared, &mut a).expect("forward");
        let mut fresh = compiled_small.make_scratch();
        compiled_small.forward_into(&x, &mut fresh, &mut b).expect("forward");
        prop_assert_eq!(a, b);
    }
}
