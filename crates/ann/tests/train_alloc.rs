//! Counting-allocator proof that the training pipeline performs zero
//! heap allocations after warm-up.
//!
//! Black-box formulation: a training run pays a fixed setup cost
//! (weight matrices, the scaled copies of the data set, one scratch
//! set per stage) and every epoch after that reuses the same buffers.
//! If the epoch loops are allocation-free, the total allocation count
//! of a run must not depend on how many epochs it sweeps — extra
//! epochs are free. The test pins exactly that for the RBM's CD-1
//! loop, the MLP's back-propagation loop, and the full
//! `Dbn::train_set` pipeline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use helio_ann::{Dbn, DbnConfig, Matrix, Mlp, Rbm, TrainingSet};
use helio_common::rng::seeded;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests running on sibling threads
/// would count each other's allocations into a measured region; each
/// test holds this lock for its whole body.
static MEASURE: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    MEASURE.lock().unwrap_or_else(|e| e.into_inner())
}

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// The mutex serialises test *bodies*, but libtest's own harness
/// threads may still allocate concurrently with a measured region.
/// Interference only ever inflates a count, so the smallest of three
/// runs is the clean measurement.
fn min_of(mut f: impl FnMut() -> u64) -> u64 {
    (0..3).map(|_| f()).min().unwrap_or(0)
}

/// A scheduler-shaped data set: wide enough (16 features) that the
/// SIMD row kernels engage, small enough to train in milliseconds.
fn dataset() -> TrainingSet {
    let mut rng = seeded(0xA110C);
    let inputs = Matrix::random(48, 16, 1.0, &mut rng);
    let targets = Matrix::random(48, 5, 0.5, &mut rng);
    TrainingSet::new(inputs, targets).expect("consistent set")
}

#[test]
fn rbm_training_allocations_do_not_scale_with_epochs() {
    let _serial = serial();
    let set = dataset();
    let count = |epochs: usize| {
        let mut rng = seeded(3);
        let mut rbm = Rbm::new(set.input_dim(), 12, &mut rng);
        allocations_during(|| {
            rbm.train_matrix(&set.inputs, epochs, 0.1, &mut rng)
                .expect("rbm trains");
        })
    };
    let short = min_of(|| count(2));
    let long = min_of(|| count(40));
    assert_eq!(
        long, short,
        "{long} allocations over 40 epochs vs {short} over 2 — \
         the CD-1 loop allocates per step"
    );
}

#[test]
fn mlp_training_allocations_do_not_scale_with_epochs() {
    let _serial = serial();
    let set = dataset();
    let count = |epochs: usize| {
        let mut rng = seeded(4);
        let mut mlp =
            Mlp::new(&[set.input_dim(), 16, 10, set.output_dim()], &mut rng).expect("valid sizes");
        allocations_during(|| {
            mlp.train_matrix(&set.inputs, &set.targets, epochs, 0.3)
                .expect("mlp trains");
        })
    };
    let short = min_of(|| count(2));
    let long = min_of(|| count(40));
    assert_eq!(
        long, short,
        "{long} allocations over 40 epochs vs {short} over 2 — \
         the back-propagation loop allocates per step"
    );
}

#[test]
fn dbn_training_allocations_do_not_scale_with_epochs() {
    let _serial = serial();
    let set = dataset();
    let count = |rbm_epochs: usize, bp_epochs: usize| {
        let mut cfg = DbnConfig::small(7);
        cfg.rbm_epochs = rbm_epochs;
        cfg.bp_epochs = bp_epochs;
        allocations_during(|| {
            Dbn::train_set(&set, &cfg).expect("dbn trains");
        })
    };
    let short = min_of(|| count(2, 2));
    let long = min_of(|| count(30, 60));
    assert_eq!(
        long, short,
        "{long} allocations at 30/60 epochs vs {short} at 2/2 — \
         a training stage allocates per epoch"
    );
}
