//! Counting-allocator proof that the distilled decision path is
//! allocation-free in steady state: distillation pays the whole setup
//! cost, the per-period prewalk/fold reuses its buffer, and every
//! `predict_folded` call after the first — the per-decision hot path —
//! touches no allocator at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use helio_ann::{Dbn, DbnConfig, DistillConfig, DistilledPolicy};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global; each test holds this lock for its
/// whole body so sibling tests don't count into a measured region.
static MEASURE: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    MEASURE.lock().unwrap_or_else(|e| e.into_inner())
}

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// A scheduler-shaped teacher: 13 inputs, the golden hidden stack,
/// 10 outputs.
fn trained_dbn() -> Dbn {
    let inputs: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..13)
                .map(|j| ((i * 13 + j) as f64 * 0.37).sin().abs() * 40.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..10)
                .map(|j| ((i + j) as f64 * 0.21).cos().abs())
                .collect()
        })
        .collect();
    let mut cfg = DbnConfig::small(42);
    cfg.bp_epochs = 20;
    Dbn::train(&inputs, &targets, &cfg).expect("trains")
}

#[test]
fn distilled_decision_path_is_allocation_free_after_warmup() {
    let _serial = serial();
    let dbn = trained_dbn();
    let cfg = DistillConfig {
        depth_const: 4,
        depth_vary: 4,
        samples: 2048,
        candidates: 16,
        holdout: 256,
        ..DistillConfig::small(7)
    };
    let policy = DistilledPolicy::distill(&dbn, 10, &[], &cfg).expect("distils");

    // Ten "periods" of five decisions each: the constant prefix is
    // fixed within a period, the varying tail changes per decision.
    let periods: Vec<Vec<Vec<f64>>> = (0..10)
        .map(|p| {
            (0..5)
                .map(|d| {
                    (0..13)
                        .map(|t| {
                            if t < 10 {
                                ((p * 13 + t) as f64 * 0.61).sin().abs() * 40.0
                            } else {
                                ((p * 5 + d + t) as f64 * 0.29).cos().abs() * 3.0
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let mut folded = Vec::new();
    let mut out = Vec::new();
    // Warmup: sizes the fold buffer and the output vector once.
    let cursor = policy.prewalk(&periods[0][0]).expect("prewalk");
    policy
        .fold(cursor, &periods[0][0], &mut folded)
        .expect("fold");
    policy
        .predict_folded(cursor, &folded, &periods[0][0], &mut out)
        .expect("predict");

    let count = allocations_during(|| {
        for period in &periods {
            let cursor = policy.prewalk(&period[0]).expect("prewalk");
            policy.fold(cursor, &period[0], &mut folded).expect("fold");
            for x in period {
                policy
                    .predict_folded(cursor, &folded, x, &mut out)
                    .expect("predict");
            }
        }
    });
    assert_eq!(
        count, 0,
        "{count} allocations across 10 periods × 5 decisions — the \
         prewalk/fold/predict path must reuse its buffers"
    );
}
