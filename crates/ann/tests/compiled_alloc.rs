//! Counting-allocator proof that the compiled forward is
//! allocation-free after construction: `CompiledDbn::compile` +
//! `make_scratch` pay the whole setup cost, and every
//! `forward_into` call after that — first call included — reuses the
//! packed weights, the ping-pong scratch and the output buffer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use helio_ann::{CompiledDbn, CompiledTier, Dbn, DbnConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global; each test holds this lock for its
/// whole body so sibling tests don't count into a measured region.
static MEASURE: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    MEASURE.lock().unwrap_or_else(|e| e.into_inner())
}

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// A scheduler-shaped network: 13 inputs, the golden hidden stack,
/// 10 outputs.
fn trained_dbn() -> Dbn {
    let inputs: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..13)
                .map(|j| ((i * 13 + j) as f64 * 0.37).sin().abs() * 40.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..10)
                .map(|j| ((i + j) as f64 * 0.21).cos().abs())
                .collect()
        })
        .collect();
    let mut cfg = DbnConfig::small(42);
    cfg.bp_epochs = 20;
    Dbn::train(&inputs, &targets, &cfg).expect("trains")
}

#[test]
fn compiled_forward_is_allocation_free_after_construction() {
    let _serial = serial();
    let dbn = trained_dbn();
    for tier in [CompiledTier::F32, CompiledTier::Int8] {
        let compiled = CompiledDbn::compile(&dbn, tier).expect("compiles");
        let mut scratch = compiled.make_scratch();
        let mut out = Vec::with_capacity(compiled.output_dim());
        let inputs: Vec<Vec<f64>> = (0..50)
            .map(|i| (0..13).map(|t| (i * 13 + t) as f64 * 0.7).collect())
            .collect();
        let count = allocations_during(|| {
            for x in &inputs {
                compiled
                    .forward_into(x, &mut scratch, &mut out)
                    .expect("forward");
            }
        });
        assert_eq!(
            count, 0,
            "{tier:?}: {count} allocations across 50 compiled forwards — \
             the hot path must reuse the scratch and output buffers"
        );
    }
}
