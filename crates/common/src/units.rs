//! Physical-unit newtypes used across the workspace.
//!
//! All quantities are stored in SI base units as `f64`:
//! [`Joules`], [`Watts`], [`Volts`], [`Farads`], [`Seconds`].
//! Display formatting picks engineering-friendly sub-units (mW, mJ) where
//! the magnitudes of this paper's platform live.
//!
//! The arithmetic impls encode the dimensional algebra the simulator needs:
//! `Watts * Seconds -> Joules`, `Joules / Seconds -> Watts`,
//! `Joules / Watts -> Seconds`, and capacitor energy
//! `½·C·V²` via [`Farads::energy_between`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw SI value.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw SI value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Elementwise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Elementwise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True when the stored value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dimensionless ratio of two like quantities.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Duration in seconds.
    Seconds,
    "s"
);

impl Joules {
    /// Builds an energy from a millijoule value.
    #[inline]
    pub fn from_millijoules(mj: f64) -> Self {
        Joules(mj * 1e-3)
    }

    /// Returns the energy expressed in millijoules.
    #[inline]
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }
}

impl Watts {
    /// Builds a power from a milliwatt value (the paper's native unit).
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Watts(mw * 1e-3)
    }

    /// Returns the power expressed in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Seconds {
    /// Builds a duration from whole minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Seconds(minutes * 60.0)
    }

    /// Builds a duration from whole hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Seconds(hours * 3600.0)
    }

    /// Returns the duration in minutes.
    #[inline]
    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the duration in hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy delivered by a constant power over a duration.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power that delivers this energy over the duration.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Time needed to deliver this energy at the given power.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Farads {
    /// Energy stored in this capacitance at voltage `v`: `½·C·V²`.
    #[inline]
    pub fn stored_energy(self, v: Volts) -> Joules {
        Joules(0.5 * self.0 * v.0 * v.0)
    }

    /// Usable energy between two voltages: `½·C·(V_hi² − V_lo²)`.
    ///
    /// Returns a negative energy when `hi < lo`; callers that need a
    /// magnitude should take `.abs()`.
    #[inline]
    pub fn energy_between(self, hi: Volts, lo: Volts) -> Joules {
        Joules(0.5 * self.0 * (hi.0 * hi.0 - lo.0 * lo.0))
    }

    /// Voltage reached when the capacitor holds `energy`: `√(2E/C)`.
    ///
    /// Clamps negative energies to zero volts rather than producing NaN,
    /// which keeps numerical round-off in discharge paths benign.
    #[inline]
    pub fn voltage_for_energy(self, energy: Joules) -> Volts {
        if energy.0 <= 0.0 {
            Volts(0.0)
        } else {
            Volts((2.0 * energy.0 / self.0).sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(0.05) * Seconds::new(60.0);
        assert!((e.value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules::new(3.0) / Seconds::new(60.0);
        assert!((p.value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn energy_over_power_is_time() {
        let t = Joules::new(3.0) / Watts::new(0.05);
        assert!((t.value() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn milli_round_trips() {
        assert!((Watts::from_milliwatts(50.0).milliwatts() - 50.0).abs() < 1e-12);
        assert!((Joules::from_millijoules(7.5).millijoules() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn capacitor_energy_identities() {
        let c = Farads::new(10.0);
        let e = c.stored_energy(Volts::new(5.0));
        assert!((e.value() - 125.0).abs() < 1e-9);
        // Round-trip: voltage_for_energy inverts stored_energy.
        let v = c.voltage_for_energy(e);
        assert!((v.value() - 5.0).abs() < 1e-9);
        // Usable window 5V -> 1V on 10F is 120 J.
        let usable = c.energy_between(Volts::new(5.0), Volts::new(1.0));
        assert!((usable.value() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn negative_energy_clamps_to_zero_volts() {
        let c = Farads::new(1.0);
        assert_eq!(c.voltage_for_energy(Joules::new(-1e-9)).value(), 0.0);
    }

    #[test]
    fn ratio_of_like_units_is_dimensionless() {
        let ratio = Joules::new(3.0) / Joules::new(6.0);
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_uses_suffix_and_precision() {
        assert_eq!(format!("{:.2}", Watts::new(0.0945)), "0.09 W");
        assert_eq!(format!("{}", Farads::new(10.0)), "10 F");
    }

    #[test]
    fn sum_and_ordering() {
        let total: Joules = [Joules::new(1.0), Joules::new(2.5)].into_iter().sum();
        assert!((total.value() - 3.5).abs() < 1e-12);
        assert!(Joules::new(1.0) < Joules::new(2.0));
        assert_eq!(Joules::new(2.0).max(Joules::new(1.0)), Joules::new(2.0));
    }

    #[test]
    fn minutes_hours_conversions() {
        assert!((Seconds::from_minutes(10.0).value() - 600.0).abs() < 1e-12);
        assert!((Seconds::from_hours(2.0).hours() - 2.0).abs() < 1e-12);
    }
}
