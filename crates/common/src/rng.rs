//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the workspace (weather process, random
//! benchmark generator, DBN weight initialisation, prediction noise) draws
//! from a [`rand_chacha::ChaCha8Rng`] seeded through this module, so that
//! every experiment is exactly reproducible across runs and platforms.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used throughout the workspace.
pub type DetRng = ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use helio_common::rng::{seeded, DetRng};
/// use rand::Rng;
///
/// let mut a: DetRng = seeded(42);
/// let mut b: DetRng = seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> DetRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Splitting by label keeps unrelated stochastic components (e.g. the
/// weather process vs. the forecast-noise process) statistically
/// independent while remaining reproducible, and insulates each stream
/// from changes in how many samples the others draw.
pub fn derive(seed: u64, label: &str) -> DetRng {
    // FNV-1a over the label, mixed into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let xs: Vec<u32> = (0..8).map(|_| seeded(7).gen()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
        let mut rng = seeded(7);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        assert_ne!(a, b, "stream should advance");
    }

    #[test]
    fn derive_streams_differ_by_label() {
        let a: u64 = derive(1, "weather").gen();
        let b: u64 = derive(1, "forecast").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_streams_differ_by_seed() {
        let a: u64 = derive(1, "weather").gen();
        let b: u64 = derive(2, "weather").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_is_reproducible() {
        let a: u64 = derive(9, "bench").gen();
        let b: u64 = derive(9, "bench").gen();
        assert_eq!(a, b);
    }
}
