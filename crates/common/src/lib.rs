//! # helio-common
//!
//! Shared foundations for the `heliosched` workspace: physical-unit
//! newtypes, the slotted time grid from the DAC'15 system model, seeded
//! random-number helpers, small numerical routines (golden-section search,
//! 1-D k-means, statistics) and the common error type.
//!
//! Everything in the workspace that talks about time or energy does so in
//! the vocabulary defined here, so unit mistakes (mJ vs J, slot vs period)
//! become type errors instead of silent bugs.
//!
//! ## Example
//!
//! ```
//! use helio_common::units::{Watts, Seconds};
//! use helio_common::time::TimeGrid;
//!
//! # fn main() -> Result<(), helio_common::CommonError> {
//! // A 10-minute period split into 60-second slots, 144 periods a day.
//! let grid = TimeGrid::new(4, 144, 10, Seconds::new(60.0))?;
//! assert_eq!(grid.slots_per_day(), 1440);
//!
//! // 50 mW sustained over one slot is 3 J.
//! let energy = Watts::from_milliwatts(50.0) * grid.slot_duration();
//! assert!((energy.value() - 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod math;
pub mod rng;
pub mod stats;
pub mod taskset;
pub mod time;
pub mod units;

pub use error::{CommonError, Result};
pub use taskset::{TaskSet, TaskSetIter};
pub use time::{DayId, PeriodId, PeriodRef, SlotId, SlotRef, TimeGrid};
pub use units::{Farads, Joules, Seconds, Volts, Watts};
