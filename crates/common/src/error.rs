//! Common error type shared by the workspace crates.

use std::fmt;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T, E = CommonError> = std::result::Result<T, E>;

/// Errors produced by the shared foundations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommonError {
    /// A time grid was constructed with degenerate dimensions.
    InvalidGrid(String),
    /// A numerical routine received arguments outside its domain.
    InvalidArgument(String),
    /// An iterative numerical routine failed to converge.
    NoConvergence(String),
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::InvalidGrid(msg) => write!(f, "invalid time grid: {msg}"),
            CommonError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CommonError::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
        }
    }
}

impl std::error::Error for CommonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CommonError::InvalidGrid("zero days".into());
        assert_eq!(e.to_string(), "invalid time grid: zero days");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CommonError>();
    }
}
