//! The slotted time grid of the DAC'15 system model.
//!
//! Time is organised as `N_d` days × `N_p` periods per day × `N_s` slots
//! per period, with each slot lasting `Δt` seconds (Table 1 of the paper).
//! Tasks are released once per period and may be preempted at slot
//! boundaries; energy bookkeeping advances slot by slot.

use serde::{Deserialize, Serialize};

use crate::error::{CommonError, Result};
use crate::units::Seconds;

/// Index of a day within the scheduling horizon (`i` in the paper, 0-based).
pub type DayId = usize;
/// Index of a period within a day (`j` in the paper, 0-based).
pub type PeriodId = usize;
/// Index of a slot within a period (`m` in the paper, 0-based).
pub type SlotId = usize;

/// A `(day, period)` pair addressing one scheduling period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeriodRef {
    /// Day index `i`.
    pub day: DayId,
    /// Period-within-day index `j`.
    pub period: PeriodId,
}

impl PeriodRef {
    /// Creates a period reference.
    pub const fn new(day: DayId, period: PeriodId) -> Self {
        Self { day, period }
    }
}

impl std::fmt::Display for PeriodRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}p{}", self.day, self.period)
    }
}

/// A `(day, period, slot)` triple addressing one time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotRef {
    /// Day index `i`.
    pub day: DayId,
    /// Period-within-day index `j`.
    pub period: PeriodId,
    /// Slot-within-period index `m`.
    pub slot: SlotId,
}

impl SlotRef {
    /// Creates a slot reference.
    pub const fn new(day: DayId, period: PeriodId, slot: SlotId) -> Self {
        Self { day, period, slot }
    }

    /// The period this slot belongs to.
    pub const fn period_ref(self) -> PeriodRef {
        PeriodRef::new(self.day, self.period)
    }
}

impl std::fmt::Display for SlotRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}p{}s{}", self.day, self.period, self.slot)
    }
}

/// The scheduling time grid: `N_d` days × `N_p` periods × `N_s` slots of
/// `Δt` seconds each.
///
/// # Example
///
/// ```
/// use helio_common::time::TimeGrid;
/// use helio_common::units::Seconds;
///
/// # fn main() -> Result<(), helio_common::CommonError> {
/// let grid = TimeGrid::new(2, 144, 10, Seconds::new(60.0))?;
/// assert_eq!(grid.total_slots(), 2 * 144 * 10);
/// assert!((grid.period_duration().minutes() - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeGrid {
    days: usize,
    periods_per_day: usize,
    slots_per_period: usize,
    slot_duration: Seconds,
}

impl TimeGrid {
    /// Creates a grid.
    ///
    /// # Errors
    ///
    /// Returns [`CommonError::InvalidGrid`] when any dimension is zero or
    /// the slot duration is not strictly positive and finite.
    pub fn new(
        days: usize,
        periods_per_day: usize,
        slots_per_period: usize,
        slot_duration: Seconds,
    ) -> Result<Self> {
        if days == 0 || periods_per_day == 0 || slots_per_period == 0 {
            return Err(CommonError::InvalidGrid(format!(
                "grid dimensions must be nonzero (got {days}×{periods_per_day}×{slots_per_period})"
            )));
        }
        if slot_duration.value() <= 0.0 || !slot_duration.is_finite() {
            return Err(CommonError::InvalidGrid(format!(
                "slot duration must be positive and finite (got {slot_duration})"
            )));
        }
        Ok(Self {
            days,
            periods_per_day,
            slots_per_period,
            slot_duration,
        })
    }

    /// Convenience constructor used throughout the experiments: days ×
    /// `periods_per_day` periods of `slots_per_period` one-minute slots.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeGrid::new`].
    pub fn with_minute_slots(
        days: usize,
        periods_per_day: usize,
        slots_per_period: usize,
    ) -> Result<Self> {
        Self::new(days, periods_per_day, slots_per_period, Seconds::new(60.0))
    }

    /// Number of days `N_d`.
    pub const fn days(&self) -> usize {
        self.days
    }

    /// Periods per day `N_p`.
    pub const fn periods_per_day(&self) -> usize {
        self.periods_per_day
    }

    /// Slots per period `N_s`.
    pub const fn slots_per_period(&self) -> usize {
        self.slots_per_period
    }

    /// Slot duration `Δt`.
    pub const fn slot_duration(&self) -> Seconds {
        self.slot_duration
    }

    /// Period duration `ΔT = N_s · Δt`.
    pub fn period_duration(&self) -> Seconds {
        self.slot_duration * self.slots_per_period as f64
    }

    /// Duration of one day on this grid.
    pub fn day_duration(&self) -> Seconds {
        self.period_duration() * self.periods_per_day as f64
    }

    /// Slots in one day.
    pub const fn slots_per_day(&self) -> usize {
        self.periods_per_day * self.slots_per_period
    }

    /// Total periods over the horizon.
    pub const fn total_periods(&self) -> usize {
        self.days * self.periods_per_day
    }

    /// Total slots over the horizon.
    pub const fn total_slots(&self) -> usize {
        self.days * self.slots_per_day()
    }

    /// Flat index of a period in `[0, total_periods)`.
    ///
    /// # Panics
    ///
    /// Panics if the reference lies outside the grid.
    pub fn period_index(&self, p: PeriodRef) -> usize {
        assert!(self.contains_period(p), "period {p} outside grid");
        p.day * self.periods_per_day + p.period
    }

    /// Flat index of a slot in `[0, total_slots)`.
    ///
    /// # Panics
    ///
    /// Panics if the reference lies outside the grid.
    pub fn slot_index(&self, s: SlotRef) -> usize {
        assert!(self.contains_slot(s), "slot {s} outside grid");
        (s.day * self.periods_per_day + s.period) * self.slots_per_period + s.slot
    }

    /// Inverse of [`TimeGrid::period_index`].
    pub fn period_at(&self, index: usize) -> PeriodRef {
        PeriodRef::new(index / self.periods_per_day, index % self.periods_per_day)
    }

    /// Inverse of [`TimeGrid::slot_index`].
    pub fn slot_at(&self, index: usize) -> SlotRef {
        let period_flat = index / self.slots_per_period;
        let slot = index % self.slots_per_period;
        let p = self.period_at(period_flat);
        SlotRef::new(p.day, p.period, slot)
    }

    /// Whether the period reference lies inside the grid.
    pub fn contains_period(&self, p: PeriodRef) -> bool {
        p.day < self.days && p.period < self.periods_per_day
    }

    /// Whether the slot reference lies inside the grid.
    pub fn contains_slot(&self, s: SlotRef) -> bool {
        self.contains_period(s.period_ref()) && s.slot < self.slots_per_period
    }

    /// Seconds elapsed from the start of the horizon to the *start* of a
    /// slot.
    pub fn slot_start(&self, s: SlotRef) -> Seconds {
        self.slot_duration * self.slot_index(s) as f64
    }

    /// Local time-of-day in hours (0..24-equivalent on this grid) at the
    /// start of a period. One "day" always maps onto 24 h regardless of
    /// how much wall-clock time the grid models, which is what the solar
    /// archetypes expect.
    pub fn hour_of_day(&self, p: PeriodRef) -> f64 {
        24.0 * p.period as f64 / self.periods_per_day as f64
    }

    /// Iterates over all periods in chronological order.
    pub fn periods(&self) -> impl Iterator<Item = PeriodRef> + '_ {
        (0..self.total_periods()).map(|i| self.period_at(i))
    }

    /// Iterates over all slots in chronological order.
    pub fn slots(&self) -> impl Iterator<Item = SlotRef> + '_ {
        (0..self.total_slots()).map(|i| self.slot_at(i))
    }

    /// Iterates over the slots of a single period.
    pub fn slots_in(&self, p: PeriodRef) -> impl Iterator<Item = SlotRef> + '_ {
        (0..self.slots_per_period).map(move |m| SlotRef::new(p.day, p.period, m))
    }

    /// The period after `p`, or `None` at the end of the horizon.
    pub fn next_period(&self, p: PeriodRef) -> Option<PeriodRef> {
        let idx = self.period_index(p) + 1;
        (idx < self.total_periods()).then(|| self.period_at(idx))
    }

    /// Returns a grid identical to this one but spanning `days` days.
    ///
    /// # Errors
    ///
    /// Returns [`CommonError::InvalidGrid`] when `days` is zero.
    pub fn with_days(&self, days: usize) -> Result<Self> {
        Self::new(
            days,
            self.periods_per_day,
            self.slots_per_period,
            self.slot_duration,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TimeGrid {
        TimeGrid::with_minute_slots(3, 144, 10).unwrap()
    }

    #[test]
    fn rejects_degenerate_grids() {
        assert!(TimeGrid::new(0, 1, 1, Seconds::new(1.0)).is_err());
        assert!(TimeGrid::new(1, 0, 1, Seconds::new(1.0)).is_err());
        assert!(TimeGrid::new(1, 1, 0, Seconds::new(1.0)).is_err());
        assert!(TimeGrid::new(1, 1, 1, Seconds::new(0.0)).is_err());
        assert!(TimeGrid::new(1, 1, 1, Seconds::new(f64::NAN)).is_err());
        assert!(TimeGrid::new(1, 1, 1, Seconds::new(-5.0)).is_err());
    }

    #[test]
    fn sizes_are_consistent() {
        let g = grid();
        assert_eq!(g.slots_per_day(), 1440);
        assert_eq!(g.total_periods(), 3 * 144);
        assert_eq!(g.total_slots(), 3 * 1440);
        assert!((g.period_duration().value() - 600.0).abs() < 1e-12);
        assert!((g.day_duration().hours() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn slot_index_round_trips() {
        let g = grid();
        for idx in [0, 1, 9, 10, 1439, 1440, g.total_slots() - 1] {
            let s = g.slot_at(idx);
            assert_eq!(g.slot_index(s), idx);
        }
    }

    #[test]
    fn period_index_round_trips() {
        let g = grid();
        for idx in [0, 1, 143, 144, g.total_periods() - 1] {
            let p = g.period_at(idx);
            assert_eq!(g.period_index(p), idx);
        }
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn out_of_range_slot_panics() {
        let g = grid();
        g.slot_index(SlotRef::new(3, 0, 0));
    }

    #[test]
    fn hour_of_day_covers_full_day() {
        let g = grid();
        assert!((g.hour_of_day(PeriodRef::new(0, 0)) - 0.0).abs() < 1e-12);
        assert!((g.hour_of_day(PeriodRef::new(0, 72)) - 12.0).abs() < 1e-12);
        assert!(g.hour_of_day(PeriodRef::new(0, 143)) < 24.0);
    }

    #[test]
    fn iterators_are_chronological_and_complete() {
        let g = TimeGrid::with_minute_slots(2, 3, 4).unwrap();
        let slots: Vec<_> = g.slots().collect();
        assert_eq!(slots.len(), g.total_slots());
        assert_eq!(slots[0], SlotRef::new(0, 0, 0));
        assert_eq!(*slots.last().unwrap(), SlotRef::new(1, 2, 3));
        let in_p: Vec<_> = g.slots_in(PeriodRef::new(1, 1)).collect();
        assert_eq!(in_p.len(), 4);
        assert!(in_p.iter().all(|s| s.day == 1 && s.period == 1));
    }

    #[test]
    fn next_period_wraps_days_and_ends() {
        let g = TimeGrid::with_minute_slots(2, 3, 4).unwrap();
        assert_eq!(
            g.next_period(PeriodRef::new(0, 2)),
            Some(PeriodRef::new(1, 0))
        );
        assert_eq!(g.next_period(PeriodRef::new(1, 2)), None);
    }

    #[test]
    fn slot_start_times() {
        let g = grid();
        let s = SlotRef::new(0, 1, 0);
        assert!((g.slot_start(s).value() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn with_days_preserves_shape() {
        let g = grid().with_days(30).unwrap();
        assert_eq!(g.days(), 30);
        assert_eq!(g.periods_per_day(), 144);
    }
}
