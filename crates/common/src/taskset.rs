//! A set of task indices as a `u32` bitmask.
//!
//! Task graphs in this workspace are tiny (the subset enumerators
//! assert ≤ 20 tasks), so a whole subset — the paper's `te_{i,j}(n)`
//! admission bits, a slot's pick set, the completed-task ledger — fits
//! in one machine word. `TaskSet` replaces the `Vec<bool>` masks and
//! `Vec<TaskId>` pick lists of the online hot path: it is `Copy`,
//! allocation-free, and set algebra is single instructions.
//!
//! Indices are plain `usize` task indices (`TaskId::index()`); the
//! tasks crate sits above this one, so the conversion happens at the
//! call sites.

use serde::{Deserialize, Serialize};

/// Maximum number of tasks a `TaskSet` can hold.
pub const MAX_TASKS: usize = 32;

/// A set of task indices packed into a `u32` bitmask.
///
/// Serialises as the bare integer mask (transparent newtype).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TaskSet(u32);

impl TaskSet {
    /// The empty set.
    pub const EMPTY: Self = Self(0);

    /// The set `{0, 1, …, n-1}` (all tasks of an `n`-task graph).
    ///
    /// # Panics
    ///
    /// Panics when `n > MAX_TASKS`.
    #[inline]
    #[must_use]
    pub fn all(n: usize) -> Self {
        assert!(
            n <= MAX_TASKS,
            "task graphs are limited to {MAX_TASKS} tasks"
        );
        if n == MAX_TASKS {
            Self(u32::MAX)
        } else {
            Self((1u32 << n) - 1)
        }
    }

    /// Constructs a set from its raw bitmask.
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// The raw bitmask.
    #[inline]
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Whether the set is empty.
    #[inline]
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    #[inline]
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether task index `i` is a member.
    #[inline]
    #[must_use]
    pub const fn contains(self, i: usize) -> bool {
        self.0 & (1u32 << i) != 0
    }

    /// Adds task index `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.0 |= 1u32 << i;
    }

    /// Removes task index `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.0 &= !(1u32 << i);
    }

    /// A copy with task index `i` added.
    #[inline]
    #[must_use]
    pub const fn with(self, i: usize) -> Self {
        Self(self.0 | (1u32 << i))
    }

    /// `{i}` when `cond`, the empty set otherwise — a branchless
    /// building block for assembling a mask from data-dependent
    /// predicates (a union of these compiles to straight-line bit
    /// arithmetic, where a conditional `insert` is an unpredictable
    /// branch per element).
    #[inline]
    #[must_use]
    pub const fn mask_if(cond: bool, i: usize) -> Self {
        Self((cond as u32) << i)
    }

    /// `self` when `cond`, the empty set otherwise — the whole-set
    /// sibling of [`TaskSet::mask_if`], for branchless unions of
    /// precomputed masks selected by data-dependent predicates.
    #[inline]
    #[must_use]
    pub const fn select_if(self, cond: bool) -> Self {
        Self(self.0 & (cond as u32).wrapping_neg())
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub const fn intersection(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// Members of `self` not in `other`.
    #[inline]
    #[must_use]
    pub const fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Whether every member of `self` is in `other`.
    #[inline]
    #[must_use]
    pub const fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two sets share no member.
    #[inline]
    #[must_use]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates member indices in ascending order — the canonical
    /// iteration order of the engine's demand sums.
    #[inline]
    pub fn iter(self) -> TaskSetIter {
        TaskSetIter(self.0)
    }

    /// Collects the members of a `bool` mask (`mask[i]` ⇒ `i ∈ set`).
    ///
    /// # Panics
    ///
    /// Panics when `mask.len() > MAX_TASKS`.
    #[must_use]
    pub fn from_mask(mask: &[bool]) -> Self {
        assert!(
            mask.len() <= MAX_TASKS,
            "task graphs are limited to {MAX_TASKS} tasks"
        );
        let mut bits = 0u32;
        for (i, &b) in mask.iter().enumerate() {
            if b {
                bits |= 1u32 << i;
            }
        }
        Self(bits)
    }
}

impl IntoIterator for TaskSet {
    type Item = usize;
    type IntoIter = TaskSetIter;

    fn into_iter(self) -> TaskSetIter {
        self.iter()
    }
}

/// Ascending-index iterator over a [`TaskSet`].
#[derive(Debug, Clone)]
pub struct TaskSetIter(u32);

impl Iterator for TaskSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TaskSetIter {}

impl std::fmt::Display for TaskSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_algebra() {
        let mut s = TaskSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(5);
        s.insert(19);
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && !s.contains(4));
        s.remove(5);
        assert!(!s.contains(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 19]);
    }

    #[test]
    fn all_and_full_word() {
        assert_eq!(TaskSet::all(0), TaskSet::EMPTY);
        assert_eq!(TaskSet::all(3).bits(), 0b111);
        assert_eq!(TaskSet::all(32).bits(), u32::MAX);
        assert_eq!(TaskSet::all(20).len(), 20);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = TaskSet::from_bits(0b0110);
        let b = TaskSet::from_bits(0b1110);
        assert!(a.is_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert!(a.is_disjoint(TaskSet::from_bits(0b1001)));
        assert_eq!(b.difference(a).bits(), 0b1000);
        assert_eq!(a.union(b).bits(), 0b1110);
        assert_eq!(a.intersection(b).bits(), 0b0110);
    }

    #[test]
    fn branchless_selectors() {
        assert_eq!(TaskSet::mask_if(true, 3).bits(), 0b1000);
        assert_eq!(TaskSet::mask_if(false, 3), TaskSet::EMPTY);
        let s = TaskSet::from_bits(0b1011);
        assert_eq!(s.select_if(true), s);
        assert_eq!(s.select_if(false), TaskSet::EMPTY);
    }

    #[test]
    fn mask_round_trip() {
        let mask = [true, false, true, true, false];
        let s = TaskSet::from_mask(&mask);
        assert_eq!(s.bits(), 0b1101);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn iteration_is_ascending() {
        let s = TaskSet::from_bits(0b1010_0101);
        let members: Vec<usize> = s.iter().collect();
        let mut sorted = members.clone();
        sorted.sort_unstable();
        assert_eq!(members, sorted);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(TaskSet::from_bits(0b101).to_string(), "{0,2}");
        assert_eq!(TaskSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn serialises_as_bare_mask() {
        let s = TaskSet::from_bits(37);
        assert_eq!(serde_json::to_string(&s).unwrap(), "37");
        let back: TaskSet = serde_json::from_str("37").unwrap();
        assert_eq!(back, s);
    }
}
