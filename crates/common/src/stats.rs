//! Summary statistics used by the experiment harnesses and tests.

/// Arithmetic mean; returns `0.0` for an empty slice (the experiment
/// harnesses average over possibly-empty period sets).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Minimum of a slice, `None` when empty or when any element is NaN.
pub fn min(values: &[f64]) -> Option<f64> {
    if values.iter().any(|v| v.is_nan()) {
        return None;
    }
    values.iter().copied().reduce(f64::min)
}

/// Maximum of a slice, `None` when empty or when any element is NaN.
pub fn max(values: &[f64]) -> Option<f64> {
    if values.iter().any(|v| v.is_nan()) {
        return None;
    }
    values.iter().copied().reduce(f64::max)
}

/// Mean absolute percentage error between `actual` and `predicted`
/// (skipping points where `actual == 0`), as a fraction.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "series must match");
    let mut total = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Pearson correlation coefficient; `0.0` when either series is constant.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must match");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_reject_nan() {
        assert_eq!(min(&[2.0, 1.0]), Some(1.0));
        assert_eq!(max(&[2.0, 1.0]), Some(2.0));
        assert_eq!(min(&[f64::NAN, 1.0]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let actual = [0.0, 10.0];
        let predicted = [5.0, 11.0];
        assert!((mape(&actual, &predicted) - 0.1).abs() < 1e-12);
        assert_eq!(mape(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }
}
