//! Small numerical routines used by the offline optimisation pipeline:
//! golden-section search (capacitor sizing, Eq. 10), 1-D k-means
//! (clustering per-day optimal capacitances into `H` sizes), and linear
//! interpolation (regulator-efficiency table lookups).

use crate::error::{CommonError, Result};

/// Golden-ratio constant `(√5 − 1) / 2`.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Minimises a unimodal function `f` over `[lo, hi]` by golden-section
/// search and returns `(argmin, min)`.
///
/// The routine performs `iters` shrink steps; 60 steps shrink the bracket
/// by ~1e-12, far below the physical resolution this workspace needs.
///
/// # Errors
///
/// Returns [`CommonError::InvalidArgument`] when the bracket is empty or
/// not finite.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), helio_common::CommonError> {
/// let (x, y) = helio_common::math::golden_section_min(0.0, 10.0, 80, |x| (x - 3.0).powi(2))?;
/// assert!((x - 3.0).abs() < 1e-6);
/// assert!(y < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn golden_section_min(
    lo: f64,
    hi: f64,
    iters: usize,
    mut f: impl FnMut(f64) -> f64,
) -> Result<(f64, f64)> {
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(CommonError::InvalidArgument(format!(
            "golden-section bracket must be finite and nonempty (got [{lo}, {hi}])"
        )));
    }
    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iters {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    let y = f(x);
    Ok((x, y))
}

/// Minimises `f` over a logarithmically spaced grid on `[lo, hi]` and then
/// refines around the best grid point with golden-section search.
///
/// Useful when `f` is *not* unimodal over the whole bracket (capacitor
/// sizing cost surfaces can have a plateau at the leakage/efficiency
/// crossover) but is locally well-behaved.
///
/// # Errors
///
/// Propagates [`CommonError::InvalidArgument`] for empty brackets; also
/// rejects non-positive `lo` since the grid is logarithmic.
pub fn log_grid_then_golden_min(
    lo: f64,
    hi: f64,
    grid_points: usize,
    iters: usize,
    mut f: impl FnMut(f64) -> f64,
) -> Result<(f64, f64)> {
    if lo <= 0.0 {
        return Err(CommonError::InvalidArgument(format!(
            "log grid requires positive lower bound (got {lo})"
        )));
    }
    if grid_points < 2 {
        return Err(CommonError::InvalidArgument(
            "log grid requires at least two points".into(),
        ));
    }
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(CommonError::InvalidArgument(format!(
            "bracket must be finite and nonempty (got [{lo}, {hi}])"
        )));
    }
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    let mut best_i = 0usize;
    let mut best_y = f64::INFINITY;
    let xs: Vec<f64> = (0..grid_points)
        .map(|i| (log_lo + (log_hi - log_lo) * i as f64 / (grid_points - 1) as f64).exp())
        .collect();
    for (i, &x) in xs.iter().enumerate() {
        let y = f(x);
        if y < best_y {
            best_y = y;
            best_i = i;
        }
    }
    let a = if best_i == 0 { xs[0] } else { xs[best_i - 1] };
    let b = if best_i + 1 == xs.len() {
        xs[best_i]
    } else {
        xs[best_i + 1]
    };
    if a >= b {
        return Ok((xs[best_i], best_y));
    }
    golden_section_min(a, b, iters, f)
}

/// One-dimensional k-means (Lloyd's algorithm) with deterministic quantile
/// initialisation. Returns the `k` cluster centres in ascending order.
///
/// Used to cluster the per-day optimal capacitances `{C_i^opt}` into the
/// `H` physical supercapacitor sizes (Section 4.1, step 3).
///
/// # Errors
///
/// Returns [`CommonError::InvalidArgument`] when `k == 0`, the input is
/// empty, or contains non-finite values.
pub fn kmeans_1d(values: &[f64], k: usize, iters: usize) -> Result<Vec<f64>> {
    if k == 0 {
        return Err(CommonError::InvalidArgument("k must be nonzero".into()));
    }
    if values.is_empty() {
        return Err(CommonError::InvalidArgument(
            "cannot cluster an empty set".into(),
        ));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(CommonError::InvalidArgument("values must be finite".into()));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    if k >= sorted.len() {
        // Degenerate: at most one point per cluster; centres are the points
        // themselves (deduplicated by position, padded by repetition).
        let mut centres = sorted.clone();
        while centres.len() < k {
            centres.push(*sorted.last().expect("nonempty"));
        }
        return Ok(centres);
    }
    // Quantile initialisation: centre c_i at the (i + ½)/k quantile.
    let mut centres: Vec<f64> = (0..k)
        .map(|i| {
            let q = (i as f64 + 0.5) / k as f64;
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        })
        .collect();
    let mut assign = vec![0usize; sorted.len()];
    for _ in 0..iters {
        let mut changed = false;
        for (vi, &v) in sorted.iter().enumerate() {
            let (best, _) = centres
                .iter()
                .enumerate()
                .map(|(ci, &c)| (ci, (v - c).abs()))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("k > 0");
            if assign[vi] != best {
                assign[vi] = best;
                changed = true;
            }
        }
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (vi, &v) in sorted.iter().enumerate() {
            sums[assign[vi]] += v;
            counts[assign[vi]] += 1;
        }
        for ci in 0..k {
            if counts[ci] > 0 {
                centres[ci] = sums[ci] / counts[ci] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    centres.sort_by(f64::total_cmp);
    Ok(centres)
}

/// Piecewise-linear interpolation through `(x, y)` knots.
///
/// `xs` must be strictly increasing. Queries outside the knot range clamp
/// to the boundary values (regulator-efficiency curves saturate outside
/// their measured window).
///
/// # Panics
///
/// Panics when `xs` and `ys` differ in length or are empty — the knot
/// tables in this workspace are compile-time constants, so this is a
/// programming error rather than a runtime condition.
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "knot arrays must match");
    assert!(!xs.is_empty(), "knot arrays must be nonempty");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Binary search for the bracketing interval.
    let mut lo = 0usize;
    let mut hi = xs.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    ys[lo] + t * (ys[hi] - ys[lo])
}

/// Smoothstep `3t² − 2t³` clamped to `[0, 1]`; used for smooth dawn/dusk
/// transitions in the solar archetypes.
pub fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_min() {
        let (x, y) = golden_section_min(-10.0, 10.0, 80, |x| (x - 2.5).powi(2) + 1.0).unwrap();
        assert!((x - 2.5).abs() < 1e-6);
        assert!((y - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_rejects_bad_bracket() {
        assert!(golden_section_min(1.0, 1.0, 10, |x| x).is_err());
        assert!(golden_section_min(f64::NAN, 1.0, 10, |x| x).is_err());
    }

    #[test]
    fn log_grid_handles_multimodal() {
        // Two dips; global min near x = 100.
        let f = |x: f64| {
            let d1 = ((x.ln() - 1.0f64.ln()) / 0.3).powi(2);
            let d2 = ((x.ln() - 100.0f64.ln()) / 0.3).powi(2);
            (-d1).exp().mul_add(-1.0, 0.0) + (-d2).exp().mul_add(-2.0, 0.0) + 3.0
        };
        let (x, _) = log_grid_then_golden_min(0.1, 1000.0, 64, 60, f).unwrap();
        assert!((x - 100.0).abs() / 100.0 < 0.05, "got {x}");
    }

    #[test]
    fn log_grid_rejects_nonpositive_lo() {
        assert!(log_grid_then_golden_min(0.0, 1.0, 8, 8, |x| x).is_err());
        assert!(log_grid_then_golden_min(1.0, 1.0, 8, 8, |x| x).is_err());
        assert!(log_grid_then_golden_min(1.0, 2.0, 1, 8, |x| x).is_err());
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let values = [1.0, 1.1, 0.9, 10.0, 10.2, 9.8, 100.0, 99.0, 101.0];
        let centres = kmeans_1d(&values, 3, 50).unwrap();
        assert!((centres[0] - 1.0).abs() < 0.2);
        assert!((centres[1] - 10.0).abs() < 0.5);
        assert!((centres[2] - 100.0).abs() < 1.5);
    }

    #[test]
    fn kmeans_degenerate_more_clusters_than_points() {
        let centres = kmeans_1d(&[5.0, 7.0], 4, 10).unwrap();
        assert_eq!(centres.len(), 4);
        assert!(centres.iter().all(|&c| c == 5.0 || c == 7.0));
    }

    #[test]
    fn kmeans_validates_input() {
        assert!(kmeans_1d(&[], 2, 10).is_err());
        assert!(kmeans_1d(&[1.0], 0, 10).is_err());
        assert!(kmeans_1d(&[f64::NAN], 1, 10).is_err());
    }

    #[test]
    fn lerp_interpolates_and_clamps() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert!((lerp_table(&xs, &ys, 0.5) - 5.0).abs() < 1e-12);
        assert!((lerp_table(&xs, &ys, 1.5) - 5.0).abs() < 1e-12);
        assert_eq!(lerp_table(&xs, &ys, -1.0), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 5.0), 0.0);
    }

    #[test]
    fn smoothstep_endpoints_and_midpoint() {
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(2.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
        assert!(smoothstep(0.25) < 0.25); // ease-in
    }
}
