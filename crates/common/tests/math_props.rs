//! Property tests of the numerical routines the offline optimiser
//! leans on.

use helio_common::math::{golden_section_min, kmeans_1d, lerp_table, smoothstep};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Golden-section search finds the vertex of any parabola inside
    /// the bracket.
    #[test]
    fn golden_section_finds_parabola_vertex(
        vertex in -50.0f64..50.0,
        scale in 0.1f64..10.0,
        offset in -5.0f64..5.0,
    ) {
        let (x, y) = golden_section_min(-100.0, 100.0, 90, |x| {
            scale * (x - vertex) * (x - vertex) + offset
        }).expect("valid bracket");
        prop_assert!((x - vertex).abs() < 1e-5, "x {} vs vertex {}", x, vertex);
        prop_assert!((y - offset).abs() < 1e-8);
    }

    /// k-means centres lie within the data range and are sorted.
    #[test]
    fn kmeans_centres_stay_in_range(
        values in prop::collection::vec(-100.0f64..100.0, 3..40),
        k in 1usize..6,
    ) {
        let centres = kmeans_1d(&values, k, 60).expect("valid input");
        prop_assert_eq!(centres.len(), k);
        let lo = values.iter().cloned().fold(f64::MAX, f64::min);
        let hi = values.iter().cloned().fold(f64::MIN, f64::max);
        for c in &centres {
            prop_assert!(*c >= lo - 1e-9 && *c <= hi + 1e-9, "centre {} outside [{}, {}]", c, lo, hi);
        }
        prop_assert!(centres.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    /// Linear interpolation is bounded by the knot values it sits
    /// between and exact at knots.
    #[test]
    fn lerp_is_bounded_and_exact_at_knots(
        y0 in -10.0f64..10.0,
        y1 in -10.0f64..10.0,
        y2 in -10.0f64..10.0,
        q in -2.0f64..4.0,
    ) {
        let xs = [0.0, 1.0, 2.0];
        let ys = [y0, y1, y2];
        let v = lerp_table(&xs, &ys, q);
        let lo = ys.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ys.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        prop_assert!((lerp_table(&xs, &ys, 1.0) - y1).abs() < 1e-12);
    }

    /// Smoothstep is monotone on [0, 1] and clamped outside.
    #[test]
    fn smoothstep_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(smoothstep(lo) <= smoothstep(hi) + 1e-12);
        prop_assert_eq!(smoothstep(-a - 0.001), 0.0);
        prop_assert_eq!(smoothstep(1.001 + a), 1.0);
    }
}
