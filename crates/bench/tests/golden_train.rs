//! Byte-identity check of the training pipeline: re-trains the
//! fixed-seed golden DBN from the optimal planner's recorded samples
//! and compares the serialised weights against the committed
//! `results/golden_train/dbn_ecg.json`.
//!
//! The committed fixture was generated on the pre-refactor trainer
//! (`cargo run -p helio-bench --bin golden_train`), so this test —
//! which CI runs — pins `Dbn::train`'s output bitwise across the
//! scratch-based/SIMD rewrite: the vendored serde formats `f64` with
//! shortest-round-trip precision, so byte equality of the JSON is
//! value equality of every weight, bias, and scaler bound.

use std::path::PathBuf;

use helio_bench::golden::{
    golden_dbn, golden_dp, golden_node, golden_trace, render_dbn, GOLDEN_DELTA, GOLDEN_TRAIN_DIR,
};
use helio_tasks::benchmarks;
use heliosched::OptimalPlanner;

#[test]
fn trained_weights_match_committed_golden_bytewise() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(GOLDEN_TRAIN_DIR)
        .join("dbn_ecg.json");
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    let node = golden_node();
    let trace = golden_trace();
    let graph = benchmarks::ecg();
    let optimal = OptimalPlanner::compute(&node, &graph, &trace, &golden_dp(), GOLDEN_DELTA)
        .expect("golden optimal plan");
    let fresh = render_dbn(&golden_dbn(&optimal));
    assert_eq!(
        fresh,
        committed,
        "fixed-seed Dbn::train produced different weights than the \
         committed fixture ({}). Training must stay bit-exact across \
         refactors; if behaviour changed intentionally, regenerate with \
         `cargo run -p helio-bench --bin golden_train`.",
        path.display()
    );
}
