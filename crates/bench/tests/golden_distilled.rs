//! The distilled-artifact DMR regression gate: replays the 21 golden
//! scenarios with the DBN case running the branch-free distilled
//! artifact and asserts every scenario's overall DMR lands within
//! `GOLDEN_DISTILLED_DMR_EPS` of the f64 reference suite.
//!
//! The reference side is `golden_reports()` — `tests/golden_online.rs`
//! already pins those reports byte-for-byte to the committed
//! `results/golden_online/*.json` files, so comparing in-process is
//! equivalent to comparing against the committed fixtures. The
//! distilled side is deliberately *not* byte-gated: the artifact is a
//! linear model tree covered by its recorded teacher-agreement rate,
//! and this harness bounds what student/teacher disagreements do to
//! the metric the paper reports — the deadline miss rate.

use helio_bench::golden::{
    golden_dbn, golden_distilled_policy, golden_distilled_reports, golden_dp, golden_grid,
    golden_node, golden_reports, golden_trace, GOLDEN_DELTA, GOLDEN_DISTILLED_DMR_EPS,
};
use heliosched::OptimalPlanner;

#[test]
fn distilled_dmr_within_epsilon_on_all_golden_scenarios() {
    let reference = golden_reports();
    let distilled = golden_distilled_reports();
    assert_eq!(reference.len(), 21, "golden suite is 21 scenarios");
    assert_eq!(distilled.len(), reference.len());
    for ((name, want), (distilled_name, got)) in reference.iter().zip(&distilled) {
        assert_eq!(name, distilled_name, "scenario order diverged");
        let delta = (got.overall_dmr() - want.overall_dmr()).abs();
        assert!(
            delta <= GOLDEN_DISTILLED_DMR_EPS,
            "{name}: distilled DMR {} vs reference {} — |Δ| {delta} \
             exceeds epsilon {GOLDEN_DISTILLED_DMR_EPS}",
            got.overall_dmr(),
            want.overall_dmr()
        );
        if name != "ecg_dbn" {
            // Everything except the DBN case never touches the
            // distilled path — those reports must not drift at all.
            assert_eq!(
                serde_json::to_string(got).expect("report serialises"),
                serde_json::to_string(want).expect("report serialises"),
                "{name} diverged but does not use the distilled planner"
            );
        }
    }
    let (name, dbn_report) = &distilled[20];
    assert_eq!(name, "ecg_dbn");
    assert_eq!(dbn_report.planner, "distilled");
}

#[test]
fn golden_artifact_agrees_with_its_teacher() {
    // The recorded holdout agreement is the artifact's coverage
    // contract; a distillation regression shows up here before it
    // shows up as DMR drift.
    let node = golden_node();
    let trace = golden_trace();
    let graph = helio_tasks::benchmarks::ecg();
    let optimal = OptimalPlanner::compute(&node, &graph, &trace, &golden_dp(), GOLDEN_DELTA)
        .expect("golden optimal");
    let dbn = golden_dbn(&optimal);
    let policy = golden_distilled_policy(&dbn);
    assert!(
        policy.agreement() >= 0.9,
        "holdout agreement {} below the 0.9 floor",
        policy.agreement()
    );
    assert_eq!(policy.const_prefix(), golden_grid().slots_per_period());
}
