//! Byte-identity check of the online golden suite: re-runs every
//! golden configuration and compares the serialised `SimReport`
//! against the committed `results/golden_online/*.json` files.
//!
//! The committed files were generated on the pre-refactor engine
//! (`cargo run -p helio-bench --bin golden_online`), so this test —
//! which CI runs — pins the refactored engine's behaviour bitwise:
//! the vendored serde formats `f64` with shortest-round-trip
//! precision, so byte equality is value equality.

use std::path::PathBuf;

use helio_bench::golden::{
    golden_batch_reports, golden_checkpoint_reports, golden_reports, golden_reports_with,
    golden_sharded_reports, render, GOLDEN_DIR,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(GOLDEN_DIR)
}

#[test]
fn reports_match_committed_goldens_bytewise() {
    let dir = golden_dir();
    let reports = golden_reports();
    assert!(!reports.is_empty());
    let mut checked = 0usize;
    for (name, report) in &reports {
        let path = dir.join(format!("{name}.json"));
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        let fresh = render(report);
        assert_eq!(
            fresh,
            committed,
            "SimReport for `{name}` diverged from the committed golden \
             ({}). If the engine's behaviour changed intentionally, \
             regenerate with `cargo run -p helio-bench --bin golden_online`.",
            path.display()
        );
        checked += 1;
    }
    // 6 benchmarks × 3 patterns + optimal + mpc + dbn on ECG.
    assert_eq!(checked, 21, "golden suite shrank unexpectedly");
}

/// The batching gate: every golden case run through `BatchEngine` —
/// scenarios advancing in lockstep, DBN inference batched across the
/// batch — must reproduce the committed bytes exactly. This is the
/// batched engine's correctness contract over all 21 golden seeds.
#[test]
fn batch_engine_reproduces_goldens_bytewise() {
    let dir = golden_dir();
    let reports = golden_batch_reports();
    assert_eq!(reports.len(), 21);
    for (name, report) in &reports {
        let path = dir.join(format!("{name}.json"));
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        assert_eq!(
            render(report),
            committed,
            "`{name}` diverged when run through BatchEngine — the batched \
             path must be byte-identical to the sequential engine"
        );
    }
}

/// The sharding gate: every golden case run through
/// `BatchEngine::run_sharded` — scenarios partitioned into contiguous
/// per-worker shards, each worker with its own scratch — must
/// reproduce the committed bytes exactly, for single- and multi-shard
/// partitions. This is the sharded engine's correctness contract over
/// all 21 golden seeds.
#[test]
fn sharded_engine_reproduces_goldens_bytewise() {
    let dir = golden_dir();
    for shards in [1usize, 3] {
        let reports = golden_sharded_reports(shards);
        assert_eq!(reports.len(), 21);
        for (name, report) in &reports {
            let path = dir.join(format!("{name}.json"));
            let committed = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
            assert_eq!(
                render(report),
                committed,
                "`{name}` diverged when run through BatchEngine::run_sharded \
                 with {shards} shards — the sharded path must be byte-identical \
                 to the sequential engine"
            );
        }
    }
}

/// The checkpoint gate: every golden case killed at a period boundary,
/// its `BatchCheckpoint` JSON-round-tripped (the fleet service's
/// on-disk resume) and finished under a different shard count must
/// reproduce the committed bytes exactly — at the very first boundary,
/// mid-horizon and on the last period of the 96-period grid. This is
/// the crash-safe resume contract over all 21 golden seeds.
#[test]
fn checkpoint_resumed_engine_reproduces_goldens_bytewise() {
    let dir = golden_dir();
    for (kill, shards) in [(1usize, 1usize), (48, 3), (95, 3)] {
        let reports = golden_checkpoint_reports(kill, shards);
        assert_eq!(reports.len(), 21);
        for (name, report) in &reports {
            let path = dir.join(format!("{name}.json"));
            let committed = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
            assert_eq!(
                render(report),
                committed,
                "`{name}` diverged after a kill at period {kill} resumed \
                 with {shards} shards — checkpoint/resume must be \
                 byte-identical to the uninterrupted run"
            );
        }
    }
}

/// The robustness gate: an *empty* fault harness must be invisible —
/// every golden case run through `Engine::run_with_faults` reproduces
/// the committed bytes exactly.
#[test]
fn empty_fault_harness_reproduces_goldens_bytewise() {
    let dir = golden_dir();
    let empty = helio_faults::FaultHarness::empty();
    let reports = golden_reports_with(Some(&empty));
    assert_eq!(reports.len(), 21);
    for (name, report) in &reports {
        let path = dir.join(format!("{name}.json"));
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        assert_eq!(
            render(report),
            committed,
            "`{name}` diverged under an empty fault harness — the fault \
             path must be zero-cost and behaviour-neutral when no faults \
             are planned"
        );
    }
}
