//! Byte-identity check of the fleet service: replays the committed
//! session `results/golden_fleet/session.jsonl` through
//! `helio_fleet::serve` in memory and compares the full response
//! stream against the committed `expected.jsonl` — then re-derives one
//! of the streamed reports with the sequential engine to anchor the
//! fixture to the engine's own golden contract.

use std::io::Cursor;
use std::path::PathBuf;

use helio_solar::{DayArchetype, SolarPanel, TraceBuilder};
use helio_tasks::benchmarks;
use heliosched::{Engine, FixedPlanner, Pattern};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/golden_fleet")
        .join(name)
}

fn replay_session() -> (helio_fleet::FleetService, String) {
    let session = std::fs::read_to_string(fixture("session.jsonl")).expect("session fixture");
    let mut out: Vec<u8> = Vec::new();
    let service = helio_fleet::serve(Cursor::new(session), &mut out).expect("session serves");
    (service, String::from_utf8(out).expect("utf8 output"))
}

/// The fleet smoke contract: one long-lived session, two consecutive
/// batch requests, streamed reports byte-identical to the committed
/// fixture.
#[test]
fn fleet_session_reproduces_committed_bytes() {
    let (service, out) = replay_session();
    let expected = std::fs::read_to_string(fixture("expected.jsonl")).expect("expected fixture");
    assert_eq!(
        out, expected,
        "fleet session output diverged from results/golden_fleet/expected.jsonl — \
         if the engine's behaviour changed intentionally, regenerate with \
         `cargo run -p helio-fleet < results/golden_fleet/session.jsonl`"
    );
    assert_eq!(service.requests_served(), 2, "both requests must be served");
    assert_eq!(service.scenarios_served(), 6);
    assert_eq!(service.workers(), 2, "config pins two workers");
}

/// Anchors the fixture to the engine: the fleet's `id=1, index=2`
/// response (ASAP on seed 5) must embed exactly the report a direct
/// sequential `Engine::run` produces.
#[test]
fn fleet_report_matches_sequential_engine() {
    let (_, out) = replay_session();
    let line = out
        .lines()
        .find(|l| l.starts_with("{\"id\":1,\"index\":2,"))
        .expect("response line for request 1, scenario 2");

    // Rebuild scenario 2 of request 1 by hand: the session config is a
    // 1-day 24x10x60s grid on [2 F, 15 F] ECG, and the scenario is
    // {"seed": 5, "planner": "asap"} (day defaults to Clear, capacitor
    // to 0).
    let grid =
        helio_common::time::TimeGrid::new(1, 24, 10, helio_common::units::Seconds::new(60.0))
            .expect("grid");
    let node = heliosched::NodeConfig::builder(grid)
        .capacitors(&[
            helio_common::units::Farads::new(2.0),
            helio_common::units::Farads::new(15.0),
        ])
        .build()
        .expect("node");
    let graph = benchmarks::ecg();
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(5)
        .days(&[DayArchetype::Clear])
        .build();
    let report = Engine::new(&node, &graph, &trace)
        .expect("engine")
        .run(&mut FixedPlanner::new(Pattern::Asap, 0))
        .expect("run");
    let expected = format!(
        "{{\"id\":1,\"index\":2,\"report\":{}}}",
        serde_json::to_string(&report).expect("report serialises")
    );
    assert_eq!(
        line, expected,
        "fleet-streamed report diverged from Engine::run"
    );
}
