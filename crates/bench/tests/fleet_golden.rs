//! Byte-identity check of the fleet service: replays the committed
//! session `results/golden_fleet/session.jsonl` through
//! `helio_fleet::serve` in memory and compares the full response
//! stream against the committed `expected.jsonl` — then re-derives one
//! of the streamed reports with the sequential engine to anchor the
//! fixture to the engine's own golden contract.

use std::io::Cursor;
use std::path::PathBuf;

use helio_solar::{DayArchetype, SolarPanel, TraceBuilder};
use helio_tasks::benchmarks;
use heliosched::{Engine, FixedPlanner, Pattern};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/golden_fleet")
        .join(name)
}

fn replay_session() -> (helio_fleet::FleetService, String) {
    let session = std::fs::read_to_string(fixture("session.jsonl")).expect("session fixture");
    let mut out: Vec<u8> = Vec::new();
    let service = helio_fleet::serve(Cursor::new(session), &mut out).expect("session serves");
    (service, String::from_utf8(out).expect("utf8 output"))
}

/// The fleet smoke contract: one long-lived session, two consecutive
/// batch requests, streamed reports byte-identical to the committed
/// fixture.
#[test]
fn fleet_session_reproduces_committed_bytes() {
    let (service, out) = replay_session();
    let expected = std::fs::read_to_string(fixture("expected.jsonl")).expect("expected fixture");
    assert_eq!(
        out, expected,
        "fleet session output diverged from results/golden_fleet/expected.jsonl — \
         if the engine's behaviour changed intentionally, regenerate with \
         `cargo run -p helio-fleet < results/golden_fleet/session.jsonl`"
    );
    assert_eq!(service.requests_served(), 2, "both requests must be served");
    assert_eq!(service.scenarios_served(), 6);
    assert_eq!(service.workers(), 2, "config pins two workers");
}

/// Anchors the fixture to the engine: the fleet's `id=1, index=2`
/// response (ASAP on seed 5) must embed exactly the report a direct
/// sequential `Engine::run` produces.
#[test]
fn fleet_report_matches_sequential_engine() {
    let (_, out) = replay_session();
    let line = out
        .lines()
        .find(|l| l.starts_with("{\"id\":1,\"index\":2,"))
        .expect("response line for request 1, scenario 2");

    // Rebuild scenario 2 of request 1 by hand: the session config is a
    // 1-day 24x10x60s grid on [2 F, 15 F] ECG, and the scenario is
    // {"seed": 5, "planner": "asap"} (day defaults to Clear, capacitor
    // to 0).
    let grid =
        helio_common::time::TimeGrid::new(1, 24, 10, helio_common::units::Seconds::new(60.0))
            .expect("grid");
    let node = heliosched::NodeConfig::builder(grid)
        .capacitors(&[
            helio_common::units::Farads::new(2.0),
            helio_common::units::Farads::new(15.0),
        ])
        .build()
        .expect("node");
    let graph = benchmarks::ecg();
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(5)
        .days(&[DayArchetype::Clear])
        .build();
    let report = Engine::new(&node, &graph, &trace)
        .expect("engine")
        .run(&mut FixedPlanner::new(Pattern::Asap, 0))
        .expect("run");
    let expected = format!(
        "{{\"id\":1,\"index\":2,\"report\":{}}}",
        serde_json::to_string(&report).expect("report serialises")
    );
    assert_eq!(
        line, expected,
        "fleet-streamed report diverged from Engine::run"
    );
}

/// The compiled planner kinds through the full service: one session
/// training a quick DBN, then `dbn`, `compiled-dbn` and
/// `compiled-dbn-i8` scenarios on the same seed. The compiled rows
/// must serve (artifacts compiled once at startup, shared via `Arc`)
/// and land within the tolerance-contract neighbourhood of the f64
/// reference scenario's DMR.
#[test]
fn fleet_serves_compiled_planner_kinds() {
    let session = concat!(
        "{\"grid\":{\"days\":1,\"periods\":24,\"slots\":10,\"slot_seconds\":60.0},",
        "\"capacitors_farads\":[2.0,15.0],\"benchmark\":\"ecg\",\"delta\":0.5,",
        "\"dp\":{\"voltage_buckets\":6,\"keep_per_level\":1},",
        "\"dbn\":{\"seed\":11,\"bp_epochs\":50},\"threads\":2}\n",
        "{\"id\":1,\"scenarios\":[{\"seed\":4,\"planner\":\"dbn\"},",
        "{\"seed\":4,\"planner\":\"compiled-dbn\"},",
        "{\"seed\":4,\"planner\":\"compiled-dbn-i8\",\"resilient\":true}]}\n",
    );
    let mut out: Vec<u8> = Vec::new();
    let service = helio_fleet::serve(Cursor::new(session), &mut out).expect("session serves");
    assert_eq!(service.scenarios_served(), 3);
    let out = String::from_utf8(out).expect("utf8 output");
    let dmr_of = |index: usize| -> f64 {
        let line = out
            .lines()
            .find(|l| l.starts_with(&format!("{{\"id\":1,\"index\":{index},")))
            .unwrap_or_else(|| panic!("no response for scenario {index}: {out}"));
        let v = serde_json::parse_value(line).expect("response parses");
        let num = |p: &serde_json::Value, name: &str| -> f64 {
            match p.field(name).expect(name) {
                serde_json::Value::Num(raw) => raw.parse().expect("numeric field"),
                other => panic!("field {name} is not a number: {other:?}"),
            }
        };
        let periods = v
            .field("report")
            .and_then(|r| r.field("periods"))
            .and_then(serde_json::Value::as_array)
            .expect("periods array");
        let misses: f64 = periods.iter().map(|p| num(p, "misses")).sum();
        let tasks: f64 = periods.iter().map(|p| num(p, "tasks")).sum();
        misses / tasks
    };
    let reference = dmr_of(0);
    for index in [1, 2] {
        assert!(
            (dmr_of(index) - reference).abs() < 0.05,
            "scenario {index} drifted from the reference DMR"
        );
    }
}
