//! The compiled-planner DMR regression gate: replays the 21 golden
//! scenarios with the DBN case running the compiled fast path (both
//! tiers) and asserts every scenario's overall DMR lands within
//! `GOLDEN_COMPILED_DMR_EPS` of the f64 reference suite.
//!
//! The reference side is `golden_reports()` — `tests/golden_online.rs`
//! already pins those reports byte-for-byte to the committed
//! `results/golden_online/*.json` files, so comparing in-process is
//! equivalent to comparing against the committed fixtures. The
//! compiled side is deliberately *not* byte-gated: the compiled
//! forward is covered by the `helio_ann::compiled` tolerance contract
//! (f32 arithmetic, polynomial sigmoid, de-clamped input affine, int8
//! weight rounding), and this harness bounds what those deviations do
//! to the metric the paper reports — the deadline miss rate.

use helio_ann::CompiledTier;
use helio_bench::golden::{golden_compiled_reports, golden_reports, GOLDEN_COMPILED_DMR_EPS};

fn assert_dmr_within_eps(tier: CompiledTier) {
    let reference = golden_reports();
    let compiled = golden_compiled_reports(tier);
    assert_eq!(reference.len(), 21, "golden suite is 21 scenarios");
    assert_eq!(compiled.len(), reference.len());
    for ((name, want), (compiled_name, got)) in reference.iter().zip(&compiled) {
        assert_eq!(name, compiled_name, "scenario order diverged");
        let delta = (got.overall_dmr() - want.overall_dmr()).abs();
        assert!(
            delta <= GOLDEN_COMPILED_DMR_EPS,
            "{name} ({tier:?}): compiled DMR {} vs reference {} — |Δ| {delta} \
             exceeds epsilon {GOLDEN_COMPILED_DMR_EPS}",
            got.overall_dmr(),
            want.overall_dmr()
        );
        if name != "ecg_dbn" {
            // Everything except the DBN case never touches the
            // compiled path — those reports must not drift at all.
            assert_eq!(
                serde_json::to_string(got).expect("report serialises"),
                serde_json::to_string(want).expect("report serialises"),
                "{name} diverged but does not use the compiled planner"
            );
        }
    }
    let (name, dbn_report) = &compiled[20];
    assert_eq!(name, "ecg_dbn");
    let expected = match tier {
        CompiledTier::F32 => "compiled-dbn",
        CompiledTier::Int8 => "compiled-dbn-i8",
    };
    assert_eq!(dbn_report.planner, expected);
}

#[test]
fn compiled_f32_dmr_within_epsilon_on_all_golden_scenarios() {
    assert_dmr_within_eps(CompiledTier::F32);
}

#[test]
fn compiled_int8_dmr_within_epsilon_on_all_golden_scenarios() {
    assert_dmr_within_eps(CompiledTier::Int8);
}
