//! Regenerates the committed online golden suite
//! (`results/golden_online/*.json`).
//!
//! Run this only when the engine's observable behaviour is *supposed*
//! to change (e.g. a model fix); `tests/golden_online.rs` then keeps
//! every future refactor byte-identical to the committed files.

use helio_bench::golden::{golden_reports, render, GOLDEN_DIR};

fn main() {
    std::fs::create_dir_all(GOLDEN_DIR).expect("golden dir");
    for (name, report) in golden_reports() {
        let path = format!("{GOLDEN_DIR}/{name}.json");
        std::fs::write(&path, render(&report)).expect("write golden file");
        println!(
            "wrote {path}  (dmr {:.4}, {} periods)",
            report.overall_dmr(),
            report.periods.len()
        );
    }
}
