//! Fleet-scale sharded-simulation throughput — emits the
//! machine-readable `results/BENCH_fleet.json`.
//!
//! The sweep crosses worker-thread counts {1, 2, 4, max} with batch
//! widths {16, 64, 256, 1024}: each cell advances B independent
//! DBN-planned scenarios (same node and task set, different
//! weather-seeded traces) through the fleet service's steady-state
//! request path — [`BatchEngine::with_context`] over one shared
//! `Arc<PlanContext>` plus [`BatchEngine::run_sharded_with`] over
//! per-worker [`BatchScratch`] values that persist across repetitions,
//! exactly what `helio-fleet` does across requests. The sharded run
//! partitions the batch into one contiguous shard per worker on the
//! `helio-par` scoped pool. Per cell the report records
//! scenario-periods per second and completed scenarios per second; the
//! committed baseline is the fully sequential mode (one
//! [`Engine::run`] per scenario, fresh setup every time) over the
//! B = 16 workload, measured in the same process — half before the
//! sweep and half after, so clock drift cancels.
//!
//! Correctness is asserted before anything is timed: for every thread
//! count the sharded B = 16 reports must be byte-identical to the
//! sequential ones, and at the widest batch the max-thread partition
//! must reproduce the single-shard run byte-for-byte (the same
//! contract `tests/golden_online.rs` and `tests/shard_props.rs` pin).
//! Thread counts are pinned per cell via `HELIO_THREADS`, so the sweep
//! is meaningful even when it oversubscribes the host — `host_cores`
//! records what the machine actually exposed. `HELIO_FAST=1` shrinks
//! the horizon, widths and repetitions for CI smoke runs.

use std::hint::black_box;
use std::sync::Arc;

use helio_ann::{Dbn, DbnConfig};
use helio_bench::{
    effective_threads, fast_mode, timed, write_json, BenchFleetReport, FleetSweepPoint,
};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_solar::{SolarPanel, SolarTrace, TraceBuilder, WeatherProcess};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::{
    BatchEngine, BatchScenario, BatchScratch, Engine, NodeConfig, PlanContext, ProposedPlanner,
    SwitchRule,
};

const REPORT_PATH: &str = "results/BENCH_fleet.json";
const DELTA: f64 = 0.5;
const BASELINE_BATCH: usize = 16;

fn planner(dbn: &Arc<Dbn>) -> ProposedPlanner {
    ProposedPlanner::from_shared_dbn(Arc::clone(dbn), DELTA, SwitchRule::default())
}

/// Same deployment-sized network as `bench_batch`: the decision cost is
/// what the sweep measures, not the decision quality.
fn bench_dbn(graph: &TaskGraph, in_dim: usize) -> Arc<Dbn> {
    let out_dim = 2 + graph.len();
    let inputs: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..in_dim)
                .map(|k| ((i * 7 + k * 13) % 50) as f64 / 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..64)
        .map(|i| (0..out_dim).map(|k| ((i + k) % 2) as f64).collect())
        .collect();
    let cfg = DbnConfig {
        hidden: vec![128, 128],
        rbm_epochs: 10,
        rbm_lr: 0.1,
        bp_epochs: 30,
        bp_lr: 0.4,
        seed: 9,
    };
    Arc::new(Dbn::train(&inputs, &targets, &cfg).expect("bench DBN trains"))
}

fn sharded_json(
    node: &NodeConfig,
    graph: &TaskGraph,
    traces: &[SolarTrace],
    dbn: &Arc<Dbn>,
    shards: usize,
) -> Vec<String> {
    let mut engine = BatchEngine::new(node, graph).expect("fleet engine");
    for trace in traces {
        engine
            .push(BatchScenario::new(trace, Box::new(planner(dbn))))
            .expect("fleet scenario");
    }
    engine
        .run_sharded(shards)
        .expect("sharded run")
        .iter()
        .map(|r| serde_json::to_string(r).expect("report serialises"))
        .collect()
}

fn sequential_json(
    node: &NodeConfig,
    graph: &TaskGraph,
    traces: &[SolarTrace],
    dbn: &Arc<Dbn>,
) -> Vec<String> {
    traces
        .iter()
        .map(|trace| {
            let mut p = planner(dbn);
            let report = Engine::new(node, graph, trace)
                .expect("sequential engine")
                .run(&mut p)
                .expect("sequential run");
            serde_json::to_string(&report).expect("report serialises")
        })
        .collect()
}

/// Repetitions per cell, scaled so every cell simulates a comparable
/// number of scenarios regardless of batch width.
fn reps_for(batch: usize, budget: usize) -> usize {
    (budget / batch).max(1)
}

fn main() {
    let max_threads = effective_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let saved_env = std::env::var("HELIO_THREADS").ok();

    let (days, periods_per_day, budget) = if fast_mode() {
        (1, 24, 64)
    } else {
        (2, 48, 2048)
    };
    let batches: &[usize] = if fast_mode() {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, max_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let grid = TimeGrid::new(days, periods_per_day, 2, Seconds::new(300.0)).expect("fleet grid");
    let graph = benchmarks::ecg();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .expect("fleet node");
    let in_dim = grid.slots_per_period() + node.capacitors.len() + 1;
    let dbn = bench_dbn(&graph, in_dim);
    let periods_per_scenario = grid.total_periods() as u64;

    let traces: Vec<SolarTrace> = (0..*batches.iter().max().expect("nonempty"))
        .map(|i| {
            TraceBuilder::new(grid, SolarPanel::paper_panel())
                .seed(17_000 + i as u64)
                .weather(WeatherProcess::temperate())
                .build()
        })
        .collect();

    println!(
        "# fleet sharded throughput (ecg, {days}d x {periods_per_day}p x 2s grid, \
         {periods_per_scenario} periods/scenario, host cores = {host_cores})"
    );

    // Correctness before throughput: sharded output must be
    // byte-identical to the sequential engine at every thread count,
    // and the widest batch's max-thread partition must reproduce the
    // single-shard run.
    let seq_16 = sequential_json(&node, &graph, &traces[..BASELINE_BATCH], &dbn);
    let mut identical = true;
    for &t in &thread_counts {
        std::env::set_var("HELIO_THREADS", t.to_string());
        let sharded = sharded_json(&node, &graph, &traces[..BASELINE_BATCH], &dbn, t);
        let matches = sharded == seq_16;
        assert!(
            matches,
            "sharded run diverged from sequential at B = {BASELINE_BATCH}, threads = {t} — \
             the shard partition's byte-identity contract is broken"
        );
        identical &= matches;
    }
    let widest = *batches.last().expect("nonempty");
    std::env::set_var("HELIO_THREADS", max_threads.to_string());
    let wide_sharded = sharded_json(&node, &graph, &traces[..widest], &dbn, max_threads);
    std::env::set_var("HELIO_THREADS", "1");
    let wide_single = sharded_json(&node, &graph, &traces[..widest], &dbn, 1);
    let wide_matches = wide_sharded == wide_single;
    assert!(
        wide_matches,
        "sharded run diverged from single-shard at B = {widest}, threads = {max_threads}"
    );
    identical &= wide_matches;

    // Untimed warm-up until the clock settles: CPU boost states decay
    // within a few seconds, and a baseline measured on a boosted core
    // against a sweep measured at sustained clock would understate
    // every speedup (or overstate it, run the other way round).
    let warm_start = std::time::Instant::now();
    std::env::set_var("HELIO_THREADS", max_threads.to_string());
    let warm_secs = if fast_mode() { 0.5 } else { 8.0 };
    while warm_start.elapsed().as_secs_f64() < warm_secs {
        black_box(sharded_json(
            &node,
            &graph,
            &traces[..widest],
            &dbn,
            max_threads,
        ));
    }

    // Committed baseline: fully sequential (no batching, no sharding)
    // over the B = 16 workload. Half the repetitions run before the
    // sweep and half after, so drift over the sweep's several seconds
    // cancels instead of biasing the ratio.
    let base_reps = reps_for(BASELINE_BATCH, budget);
    let run_baseline = |reps: usize| {
        timed(|| {
            for _ in 0..reps {
                for trace in &traces[..BASELINE_BATCH] {
                    let mut p = planner(&dbn);
                    let report = Engine::new(&node, &graph, trace)
                        .expect("sequential engine")
                        .run(&mut p)
                        .expect("sequential run");
                    black_box(report);
                }
            }
        })
        .1
    };
    let pre_reps = (base_reps / 2).max(1);
    let post_reps = base_reps.saturating_sub(pre_reps).max(1);
    let base_wall_pre = run_baseline(pre_reps);

    // The fleet service's steady state: one shared plan context and
    // per-worker scratches that persist across requests. Each timed
    // repetition is one request — push scenarios, run sharded — with
    // no context re-derivation and no scratch re-allocation.
    let ctx = Arc::new(PlanContext::new(&graph, grid.slot_duration()).expect("plan context"));
    let run_request = |b: usize, t: usize, scratches: &mut [BatchScratch]| {
        let mut engine =
            BatchEngine::with_context(&node, &graph, Arc::clone(&ctx)).expect("fleet engine");
        for trace in &traces[..b] {
            engine
                .push(BatchScenario::new(trace, Box::new(planner(&dbn))))
                .expect("fleet scenario");
        }
        black_box(
            engine
                .run_sharded_with(&mut scratches[..t.min(b)])
                .expect("sharded run"),
        );
    };
    let mut cells = Vec::new();
    for &t in &thread_counts {
        std::env::set_var("HELIO_THREADS", t.to_string());
        let mut scratches: Vec<BatchScratch> = (0..t).map(|_| BatchScratch::default()).collect();
        for &b in batches {
            let reps = reps_for(b, budget);
            // One untimed request warms the scratches to the cell's
            // shapes (the fleet's first-request cost).
            run_request(b, t, &mut scratches);
            let (_, wall_ms) = timed(|| {
                for _ in 0..reps {
                    run_request(b, t, &mut scratches);
                }
            });
            cells.push((t, b, reps, wall_ms));
        }
    }

    std::env::set_var("HELIO_THREADS", "1");
    let base_wall_post = run_baseline(post_reps);
    let sequential_wall_ms = base_wall_pre + base_wall_post;
    let base_scenarios = (BASELINE_BATCH * (pre_reps + post_reps)) as f64;
    let sequential_scenarios_per_sec = base_scenarios / (sequential_wall_ms / 1e3);
    println!(
        "sequential baseline: B = {BASELINE_BATCH}, {base_scenarios:.0} scenarios in \
         {sequential_wall_ms:.1} ms ({sequential_scenarios_per_sec:.1} scenarios/s, \
         half measured before the sweep, half after)"
    );
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "threads", "B", "periods", "wall ms", "periods/s", "scen/s", "speedup"
    );

    let mut points = Vec::new();
    let mut best_speedup = 0.0_f64;
    for (t, b, reps, wall_ms) in cells {
        let scenarios = (b * reps) as f64;
        let periods = b as u64 * periods_per_scenario * reps as u64;
        let periods_per_sec = periods as f64 / (wall_ms / 1e3);
        let scenarios_per_sec = scenarios / (wall_ms / 1e3);
        let speedup_vs_sequential = scenarios_per_sec / sequential_scenarios_per_sec;
        if t >= 4 {
            best_speedup = best_speedup.max(speedup_vs_sequential);
        }
        println!(
            "{t:>8} {b:>6} {periods:>12} {wall_ms:>12.1} {periods_per_sec:>14.0} \
             {scenarios_per_sec:>14.1} {speedup_vs_sequential:>7.2}x"
        );
        points.push(FleetSweepPoint {
            threads: t,
            batch: b,
            periods,
            wall_ms,
            periods_per_sec,
            scenarios_per_sec,
            speedup_vs_sequential,
        });
    }

    match saved_env {
        Some(v) => std::env::set_var("HELIO_THREADS", v),
        None => std::env::remove_var("HELIO_THREADS"),
    }

    let report = BenchFleetReport {
        host_cores,
        grid: format!("{days}d x {periods_per_day}p x 2s"),
        backend: "proposed-dbn".into(),
        identical,
        sequential_scenarios_per_sec,
        sequential_wall_ms,
        best_speedup,
        points,
    };
    println!();
    write_json(REPORT_PATH, &report);

    println!(
        "best speedup at >= 4 threads: {best_speedup:.2}x over sequential B = {BASELINE_BATCH} \
         (target: >= 2x)"
    );
    if best_speedup < 2.0 && !fast_mode() {
        eprintln!(
            "WARNING: best >= 4-thread speedup {best_speedup:.2}x misses the 2x target — \
             check host load and HELIO_THREADS pinning"
        );
    }
}
