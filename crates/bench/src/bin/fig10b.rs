//! Fig. 10(b) — migration efficiency and DMR under different numbers
//! of supercapacitors (random case 1).
//!
//! The sizing pipeline clusters the per-day optimal capacitances into
//! `H` physical sizes; with more capacitors each day's conditions find
//! a closer match and migration loses less energy. The paper evaluates
//! on its Day 2; a single synthetic day barely exercises per-day
//! capacitor *selection*, so this reproduction evaluates over a
//! varied-weather stretch (documented in EXPERIMENTS.md). Paper
//! headline: from 1 to 8 capacitors the migration efficiency rises
//! (67.5 % → 87.1 %) and the DMR falls (46.8 % → 33.7 %), saturating
//! at five or more.

use helio_bench::{fast_mode, pct, weather_trace};
use helio_common::units::Farads;
use helio_nvp::Pmu;
use helio_storage::StorageModelParams;
use helio_tasks::benchmarks;
use heliosched::{size_capacitors, DpConfig, Engine, NodeConfig, OptimalPlanner};

fn main() {
    let periods = if fast_mode() { 48 } else { 144 };
    let graph = benchmarks::random_case(1);
    let dp = DpConfig::default();
    let delta = 0.5;
    let storage = StorageModelParams::default();
    let pmu = Pmu::default();

    // Size on one stretch of weather, evaluate on another.
    let (size_days, eval_days) = if fast_mode() { (6, 3) } else { (20, 10) };
    let sizing_trace = weather_trace(size_days, periods, 4000);
    let eval = weather_trace(eval_days, periods, 4100);

    println!("# Fig. 10(b) — migration efficiency and DMR vs number of supercapacitors");
    println!("{:>4} {:>12} {:>9}   sizes (F)", "H", "migr. eff.", "DMR");
    let mut series: Vec<(usize, f64, f64)> = Vec::new();
    for h in 1..=8usize {
        let sizes: Vec<Farads> =
            size_capacitors(&graph, &sizing_trace, h, &storage, &pmu).expect("sizing");
        let node = NodeConfig::builder(*eval.grid())
            .capacitors(&sizes)
            .storage(storage.clone())
            .build()
            .expect("node");
        let mut planner =
            OptimalPlanner::compute(&node, &graph, &eval, &dp, delta).expect("optimal");
        let report = Engine::new(&node, &graph, &eval)
            .expect("engine")
            .run(&mut planner)
            .expect("run");
        let sizes_str: Vec<String> = sizes.iter().map(|c| format!("{:.1}", c.value())).collect();
        println!(
            "{:>4} {:>12} {:>9}   [{}]",
            h,
            pct(report.migration_efficiency()),
            pct(report.overall_dmr()),
            sizes_str.join(", ")
        );
        series.push((h, report.migration_efficiency(), report.overall_dmr()));
    }
    println!();
    let first = series.first().expect("nonempty");
    let last = series.last().expect("nonempty");
    println!(
        "migration efficiency: {} (H=1) -> {} (H=8)  [paper: 67.5% -> 87.1%]",
        pct(first.1),
        pct(last.1)
    );
    println!(
        "DMR: {} (H=1) -> {} (H=8)  [paper: 46.8% -> 33.7%, flat at H >= 5]",
        pct(first.2),
        pct(last.2)
    );
}
