//! Service-level chaos harness for `helio-fleet`: drives in-process
//! sessions through `serve_with` while injecting the faults described
//! by `helio_faults::ServiceFaultPlan` and `LineCorruption`, and
//! verifies the service's robustness contracts:
//!
//! * **kill/resume** — killing the service at a period boundary and
//!   restarting against the same checkpoint directory loses and
//!   duplicates zero response lines; the concatenated output is
//!   byte-identical to an uninterrupted session.
//! * **corrupted lines** — truncated/garbage/oversized/non-UTF8
//!   request lines each answer exactly one inline error line and the
//!   session keeps serving.
//! * **panic quarantine** — a scenario whose planner panics degrades
//!   to its own error line; the other scenarios of the batch answer
//!   byte-identically.
//! * **deadlines** — an expired request answers
//!   `{"id":N,"error":"deadline"}` and the session moves on.
//! * **slow client** — a writer stalling on every flush changes
//!   nothing about the bytes produced.
//!
//! Writes `results/ROBUSTNESS_fleet.json` and exits nonzero if any
//! check fails. `HELIO_FAST=1` shrinks the kill sweep to one point.

use std::collections::HashMap;
use std::io::Cursor;
use std::path::PathBuf;

use helio_bench::{fast_mode, timed, write_json, ChaosCheck, FleetChaosReport};
use helio_faults::{corrupt_line, LineCorruption, ServiceFaultPlan, SlowWriter};
use helio_fleet::{serve_with, ServeOptions, SessionOutcome};

const REPORT_PATH: &str = "results/ROBUSTNESS_fleet.json";

const CONFIG: &str =
    r#"{"grid":{"days":1,"periods":24,"slots":10},"capacitors_farads":[2.0,15.0],"threads":2}"#;

const REQUESTS: [&str; 3] = [
    r#"{"id":1,"scenarios":[{"planner":"inter"},{"planner":"asap","seed":3},{"planner":"intra","seed":4}]}"#,
    r#"{"id":2,"scenarios":[{"planner":"mpc","seed":5},{"planner":"inter","seed":6,"resilient":true}]}"#,
    r#"{"id":3,"scenarios":[{"planner":"inter","seed":7,"faults":{"seed":7,"random_blackouts":{"per_period_probability":0.2,"min_periods":1,"max_periods":2}}}]}"#,
];

fn session(requests: &[&str]) -> Vec<u8> {
    let mut bytes = CONFIG.as_bytes().to_vec();
    bytes.push(b'\n');
    for r in requests {
        bytes.extend_from_slice(r.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helio-bench-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one in-process session, panicking on session-level failure
/// (the checks below only tolerate *request*-level degradation).
fn run(input: Vec<u8>, opts: &ServeOptions) -> (Vec<u8>, SessionOutcome) {
    let mut out = Vec::new();
    let summary = serve_with(Cursor::new(input), &mut out, opts).expect("chaos session serves");
    (out, summary.outcome)
}

/// Multiset delta between the reference lines and the observed lines:
/// `(lost, duplicated)`.
fn line_delta(reference: &[u8], observed: &[u8]) -> (usize, usize) {
    let count = |bytes: &[u8]| {
        let mut m: HashMap<Vec<u8>, isize> = HashMap::new();
        for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            *m.entry(line.to_vec()).or_default() += 1;
        }
        m
    };
    let mut delta = count(reference);
    for (line, n) in count(observed) {
        *delta.entry(line).or_default() -= n;
    }
    let lost = delta.values().filter(|&&d| d > 0).sum::<isize>().max(0) as usize;
    let duplicated = (-delta.values().filter(|&&d| d < 0).sum::<isize>()).max(0) as usize;
    (lost, duplicated)
}

fn main() {
    let mut checks: Vec<ChaosCheck> = Vec::new();
    let mut push = |name: &str, passed: bool, detail: String, wall_ms: f64| {
        println!(
            "  [{}] {name}: {detail} ({wall_ms:.0} ms)",
            if passed { "ok" } else { "FAIL" }
        );
        checks.push(ChaosCheck {
            name: name.into(),
            passed,
            detail,
            wall_ms,
        });
    };

    println!("bench_chaos: fleet service under injected faults");

    // Reference: the uninterrupted session, run twice for determinism.
    let ((reference, outcome), wall) = timed(|| run(session(&REQUESTS), &ServeOptions::default()));
    let (second, _) = run(session(&REQUESTS), &ServeOptions::default());
    push(
        "baseline-determinism",
        outcome == SessionOutcome::Eof && reference == second && !reference.is_empty(),
        format!(
            "two clean sessions, {} response lines, byte-identical={}",
            reference
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .count(),
            reference == second
        ),
        wall,
    );

    // Kill/resume sweep: kill request 2 at several period boundaries,
    // restart against the same checkpoint directory, and require the
    // concatenation to be byte-identical to the reference.
    let kill_points: Vec<usize> = if fast_mode() {
        vec![12]
    } else {
        vec![0, 12, 24]
    };
    let mut lost_total = 0usize;
    let mut dup_total = 0usize;
    let mut recovery_ms = 0f64;
    for &kill in &kill_points {
        let dir = scratch_dir(&format!("kill{kill}"));
        let opts = ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(6),
            chaos: ServiceFaultPlan {
                kill_request: Some(2),
                kill_at_period: Some(kill),
                ..ServiceFaultPlan::default()
            },
            ..ServeOptions::default()
        };
        let ((part1, outcome1), wall1) = timed(|| run(session(&REQUESTS), &opts));
        let killed =
            matches!(outcome1, SessionOutcome::ChaosKill { request: 2, period } if period == kill);
        let opts = ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(6),
            ..ServeOptions::default()
        };
        let ((part2, outcome2), wall2) = timed(|| run(session(&REQUESTS), &opts));
        recovery_ms = recovery_ms.max(wall2);
        let mut joined = part1.clone();
        joined.extend_from_slice(&part2);
        let (lost, duplicated) = line_delta(&reference, &joined);
        lost_total += lost;
        dup_total += duplicated;
        push(
            &format!("kill-resume@{kill}"),
            killed && outcome2 == SessionOutcome::Eof && joined == reference,
            format!(
                "killed={killed}, lost={lost}, duplicated={duplicated}, \
                 concat-identical={}, resume {wall2:.0} ms",
                joined == reference
            ),
            wall1 + wall2,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Corrupted protocol lines: each corruption of a valid request
    // line must answer exactly one inline error line, and a healthy
    // follow-up request must still answer normally.
    let (healthy_tail, _) = run(session(&REQUESTS[2..3]), &ServeOptions::default());
    for kind in LineCorruption::ALL {
        let ((ok, detail), wall) = timed(|| {
            let mut input = CONFIG.as_bytes().to_vec();
            input.push(b'\n');
            input.extend(corrupt_line(REQUESTS[0], kind, 9));
            input.push(b'\n');
            input.extend_from_slice(REQUESTS[2].as_bytes());
            input.push(b'\n');
            let opts = ServeOptions {
                max_line_bytes: Some(1 << 16),
                ..ServeOptions::default()
            };
            let (out, outcome) = run(input, &opts);
            let lines: Vec<&[u8]> = out
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .collect();
            let error_first = lines
                .first()
                .is_some_and(|l| l.starts_with(b"{\"error\":") || l.starts_with(b"{\"id\":"));
            let tail_ok = out.ends_with(&healthy_tail[..]) && !healthy_tail.is_empty();
            let expected = 1 + healthy_tail
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .count();
            (
                outcome == SessionOutcome::Eof && lines.len() == expected && error_first && tail_ok,
                format!(
                    "{} response lines (expected {expected}), inline error first={error_first}, \
                     healthy request unaffected={tail_ok}",
                    lines.len()
                ),
            )
        });
        push(&format!("corrupt-{kind:?}"), ok, detail, wall);
    }

    // Panic quarantine: a chaos-panic planner inside a batch degrades
    // to one error line while its batch-mates answer byte-identically
    // to running without it.
    let ((ok, detail), wall) = timed(|| {
        let (clean, _) = run(
            session(&[r#"{"id":9,"scenarios":[{"planner":"inter"}]}"#]),
            &ServeOptions::default(),
        );
        let (out, outcome) = run(
            session(&[
                r#"{"id":9,"scenarios":[{"planner":"inter"},{"planner":"chaos-panic:12","seed":2}]}"#,
            ]),
            &ServeOptions::default(),
        );
        let lines: Vec<&[u8]> = out
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        let clean_line = clean
            .split(|&b| b == b'\n')
            .find(|l| !l.is_empty())
            .unwrap_or(b"");
        let healthy_identical = lines.first().copied() == Some(clean_line);
        let quarantined = lines
            .get(1)
            .is_some_and(|l| l.starts_with(b"{\"id\":9,\"index\":1,\"error\":"));
        (
            outcome == SessionOutcome::Eof && lines.len() == 2 && healthy_identical && quarantined,
            format!(
                "{} lines, healthy report identical={healthy_identical}, \
                 panicking scenario quarantined={quarantined}",
                lines.len()
            ),
        )
    });
    push("panic-quarantine", ok, detail, wall);

    // Deadlines: with a zero deadline every request answers a single
    // deadline error and the session survives.
    let ((ok, detail), wall) = timed(|| {
        let opts = ServeOptions {
            deadline_ms: Some(0),
            ..ServeOptions::default()
        };
        let (out, outcome) = run(session(&REQUESTS), &opts);
        let lines: Vec<&[u8]> = out
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        let all_deadline = lines
            .iter()
            .all(|l| l.ends_with(b"\"error\":\"deadline\"}"));
        (
            outcome == SessionOutcome::Eof && lines.len() == REQUESTS.len() && all_deadline,
            format!(
                "{} deadline errors for {} requests",
                lines.len(),
                REQUESTS.len()
            ),
        )
    });
    push("deadline-expiry", ok, detail, wall);

    // Slow client: a writer that stalls on every flush must not change
    // the bytes the service produces.
    let ((ok, detail), wall) = timed(|| {
        let stall_ms = if fast_mode() { 0 } else { 1 };
        let mut writer = SlowWriter::new(Vec::new(), stall_ms);
        let summary = serve_with(
            Cursor::new(session(&REQUESTS)),
            &mut writer,
            &ServeOptions::default(),
        )
        .expect("slow-writer session serves");
        let flushes = writer.flushes;
        let out = writer.into_inner();
        (
            summary.outcome == SessionOutcome::Eof && out == reference && flushes > 0,
            format!("byte-identical under {flushes} stalled flushes ({stall_ms} ms each)"),
        )
    });
    push("slow-writer", ok, detail, wall);

    let all_passed = checks.iter().all(|c| c.passed);
    let report = FleetChaosReport {
        grid: "1d x 24 x 10x60s".into(),
        requests: REQUESTS.len(),
        kill_points,
        recovery_ms,
        lost_lines: lost_total,
        duplicated_lines: dup_total,
        checks,
        all_passed,
    };
    write_json(REPORT_PATH, &report);
    if !all_passed {
        eprintln!("bench_chaos: FAILURE — at least one chaos check failed");
        std::process::exit(1);
    }
    println!("bench_chaos: SUCCESS — all checks passed");
}
