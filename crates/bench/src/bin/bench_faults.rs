//! Robustness sweep: how gracefully does each planner backend degrade
//! under injected faults? Emits `results/ROBUSTNESS.json`.
//!
//! The sweep crosses three axes on the golden configuration (ECG
//! benchmark, four archetype days, two-capacitor node):
//!
//! * **Blackout duration** — a midday solar outage on day 1 of 0, 4 or
//!   8 periods (`HELIO_FAST=1` drops the 8-period point).
//! * **Capacitor aging** — none, moderate (3 %/day fade, 1.3×/day
//!   leakage growth) or severe (10 %/day fade, 2×/day growth).
//! * **Planner backend** — the inter-task baseline, the DBN planner,
//!   the MPC planner and the distilled branch-free artifact, each
//!   wrapped in [`ResilientPlanner`].
//!
//! Every faulted cell additionally injects a DBN-unavailability window
//! (flat periods 24..28), so the resilient wrapper around the
//! inference-driven backends must engage its fallback at least once per
//! cell — the engagement count is part of the report. The distilled
//! backend exercises the full tier chain: the artifact steps down to
//! its compiled fallback inside the outage window (counted in the same
//! `fallbacks` column) and the resilient wrapper's inter-task baseline
//! remains behind both. Per cell the
//! sweep records the DMR, its degradation against the same backend's
//! clean run, the degraded-mode counters, and how many periods after
//! the blackout window the per-period miss count first returned to the
//! clean run's level.

use std::sync::Arc;

use helio_ann::{CompiledDbn, CompiledTier, Dbn, DistilledPolicy};
use helio_bench::golden::{
    golden_dbn, golden_distilled_policy, golden_dp, golden_node, golden_trace, GOLDEN_DELTA,
};
use helio_bench::{
    effective_threads, fast_mode, pct, write_json, RobustnessPoint, RobustnessReport,
};
use helio_faults::{
    AgingFault, DbnFault, DbnFaultMode, FaultHarness, FaultPlan, PeriodWindow, SolarFault,
};
use helio_solar::NoisyOracle;
use helio_tasks::benchmarks;
use heliosched::{
    BatchEngine, BatchScenario, FixedPlanner, Pattern, PeriodPlanner, ProposedPlanner,
    ResilientPlanner, SimReport, SwitchRule,
};

const REPORT_PATH: &str = "results/ROBUSTNESS.json";

/// Midday of day 1 on the golden 24-period day.
const BLACKOUT_START: usize = 34;

/// The DBN-unavailability window every faulted cell carries.
const DBN_OUTAGE: PeriodWindow = PeriodWindow {
    start: 24,
    periods: 4,
};

const BACKENDS: [&str; 4] = ["inter", "dbn", "mpc", "distilled"];

/// The shared inference assets every cell's planner is built from: the
/// trained teacher, its compiled form and the distilled artifact.
struct Assets {
    dbn: Arc<Dbn>,
    compiled: Arc<CompiledDbn>,
    distilled: Arc<DistilledPolicy>,
}

fn make_planner<'a>(backend: &str, assets: &Assets) -> ResilientPlanner<'a> {
    let dbn = &assets.dbn;
    let inner: Box<dyn PeriodPlanner> = match backend {
        "inter" => Box::new(FixedPlanner::new(Pattern::Inter, 1)),
        "dbn" => Box::new(ProposedPlanner::from_shared_dbn(
            Arc::clone(dbn),
            GOLDEN_DELTA,
            SwitchRule::default(),
        )),
        "mpc" => Box::new(ProposedPlanner::mpc(
            Box::new(NoisyOracle::perfect()),
            24,
            golden_dp(),
            GOLDEN_DELTA,
            SwitchRule::default(),
        )),
        "distilled" => Box::new(ProposedPlanner::from_distilled(
            Arc::clone(&assets.distilled),
            Arc::clone(&assets.compiled),
            GOLDEN_DELTA,
            SwitchRule::default(),
        )),
        other => unreachable!("unknown backend {other}"),
    };
    ResilientPlanner::new(inner)
}

fn aging_fault(label: &str) -> Option<AgingFault> {
    match label {
        "none" => None,
        "moderate" => Some(AgingFault {
            capacitance_fade_per_day: 0.97,
            leakage_growth_per_day: 1.3,
        }),
        "severe" => Some(AgingFault {
            capacitance_fade_per_day: 0.90,
            leakage_growth_per_day: 2.0,
        }),
        other => unreachable!("unknown aging label {other}"),
    }
}

/// Periods after the blackout window until the faulted run's per-period
/// misses first drop back to the clean run's level.
fn recovery_periods(
    faulted: &SimReport,
    clean: &SimReport,
    blackout_periods: usize,
) -> Option<usize> {
    if blackout_periods == 0 {
        return None;
    }
    let window_end = BLACKOUT_START + blackout_periods;
    (window_end..faulted.periods.len().min(clean.periods.len()))
        .find(|&p| faulted.periods[p].misses <= clean.periods[p].misses)
        .map(|p| p - window_end)
}

fn main() {
    let threads = effective_threads();
    let blackouts: &[usize] = if fast_mode() { &[0, 4] } else { &[0, 4, 8] };
    let agings = ["none", "moderate", "severe"];

    let node = golden_node();
    let trace = golden_trace();
    let graph = benchmarks::ecg();
    let grid = &node.grid;
    let total_periods = grid.total_periods();

    // Train the DBN once from the optimal planner's samples (the same
    // weights the golden suite pins); one shared network means the
    // batch engine fuses the DBN cells' inference into one forward per
    // period.
    let optimal =
        heliosched::OptimalPlanner::compute(&node, &graph, &trace, &golden_dp(), GOLDEN_DELTA)
            .expect("optimal for DBN training");
    let dbn = Arc::new(golden_dbn(&optimal));
    let assets = Assets {
        compiled: Arc::new(CompiledDbn::compile(&dbn, CompiledTier::F32).expect("DBN compiles")),
        distilled: Arc::new(golden_distilled_policy(&dbn)),
        dbn,
    };

    println!(
        "# robustness sweep (threads = {threads}, {} backends x {} blackouts x {} agings)",
        BACKENDS.len(),
        blackouts.len(),
        agings.len()
    );

    let sweep_start = std::time::Instant::now();

    // Clean baselines: one un-faulted run per backend, as one sharded
    // batch (byte-identical to `run()` at any shard count).
    let clean: Vec<SimReport> = {
        let mut engine = BatchEngine::new(&node, &graph).expect("robustness engine");
        for backend in &BACKENDS {
            engine
                .push(BatchScenario::new(
                    &trace,
                    Box::new(make_planner(backend, &assets)),
                ))
                .expect("clean scenario");
        }
        engine.run_parallel().expect("clean runs")
    };

    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for (b, _) in BACKENDS.iter().enumerate() {
        for (k, _) in blackouts.iter().enumerate() {
            for (a, _) in agings.iter().enumerate() {
                cells.push((b, k, a));
            }
        }
    }

    // Every cell shares the node, graph and trace and differs only in
    // planner and fault plan — exactly the shape `BatchEngine` batches:
    // one lockstep run advances the whole sweep, scenarios inside a DBN
    // outage window fall back to per-scenario planning for exactly
    // those periods.
    let harnesses: Vec<FaultHarness> = cells
        .iter()
        .map(|&(_, k, a)| {
            let blackout = blackouts[k];
            let plan = FaultPlan {
                solar: if blackout > 0 {
                    vec![SolarFault {
                        window: PeriodWindow::new(BLACKOUT_START, blackout),
                        factor: 0.0,
                    }]
                } else {
                    Vec::new()
                },
                aging: aging_fault(agings[a]),
                dbn: vec![DbnFault {
                    window: DBN_OUTAGE,
                    mode: DbnFaultMode::Unavailable,
                }],
                ..FaultPlan::default()
            };
            FaultHarness::new(&plan, total_periods, grid.periods_per_day())
        })
        .collect();
    let faulted: Vec<SimReport> = {
        let mut engine = BatchEngine::new(&node, &graph).expect("robustness engine");
        for (&(b, _, _), harness) in cells.iter().zip(&harnesses) {
            engine
                .push(
                    BatchScenario::new(&trace, Box::new(make_planner(BACKENDS[b], &assets)))
                        .with_harness(harness),
                )
                .expect("faulted scenario");
        }
        engine.run_parallel().expect("faulted runs")
    };
    let wall_ms = sweep_start.elapsed().as_secs_f64() * 1e3;

    let sweep: Vec<RobustnessPoint> = cells
        .iter()
        .zip(&faulted)
        .map(|(&(b, k, a), report)| {
            let backend = BACKENDS[b];
            let blackout = blackouts[k];
            let clean_report = &clean[b];
            let dmr = report.overall_dmr();
            let clean_dmr = clean_report.overall_dmr();
            RobustnessPoint {
                backend: backend.to_string(),
                blackout_periods: blackout,
                aging: agings[a].to_string(),
                dmr,
                clean_dmr,
                dmr_degradation: dmr - clean_dmr,
                fallbacks: report.degraded.planner_fallbacks,
                faulted_slots: report.degraded.faulted_slots,
                degraded_total: report.degraded.total(),
                fault_events: report.faults.len(),
                recovery_periods: recovery_periods(report, clean_report, blackout),
            }
        })
        .collect();

    println!("backend  blackout  aging      DMR     clean   +degr   fallbacks  recovery");
    for p in &sweep {
        println!(
            "{:<8} {:>8} {:>9} {} {} {} {:>9}  {}",
            p.backend,
            p.blackout_periods,
            p.aging,
            pct(p.dmr),
            pct(p.clean_dmr),
            pct(p.dmr_degradation),
            p.fallbacks,
            p.recovery_periods
                .map_or_else(|| "-".to_string(), |r| r.to_string()),
        );
    }

    // The DBN-outage window must have engaged the resilient fallback on
    // the inference-driven backends in every cell.
    for p in &sweep {
        if p.backend != "inter" && p.fallbacks == 0 {
            eprintln!(
                "WARNING: {} cell (blackout {}, aging {}) recorded no fallbacks \
                 despite the DBN outage",
                p.backend, p.blackout_periods, p.aging
            );
        }
    }

    let report = RobustnessReport {
        threads,
        grid: format!(
            "{}d x {}p x {}s",
            grid.days(),
            grid.periods_per_day(),
            grid.slots_per_period()
        ),
        blackout_start: BLACKOUT_START,
        dbn_outage: [DBN_OUTAGE.start, DBN_OUTAGE.periods],
        wall_ms,
        sweep,
    };
    println!("sweep wall-clock: {wall_ms:.1} ms on {threads} thread(s)");
    println!();
    write_json(REPORT_PATH, &report);
}
