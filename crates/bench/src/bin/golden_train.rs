//! Regenerates the training golden fixture under
//! `results/golden_train/`: the serialised weights of the fixed-seed
//! golden DBN (`helio_bench::golden::golden_dbn` on the optimal
//! planner's recorded samples).
//!
//! The committed fixture pins `Dbn::train` bitwise: the vendored serde
//! formats `f64` with shortest-round-trip precision, so byte equality
//! of the JSON is value equality of every weight. The
//! `tests/golden_train.rs` gate (and CI) re-trains and compares against
//! the committed bytes; only rerun this generator when training
//! behaviour changes *intentionally*.

use helio_bench::golden::{
    golden_dbn, golden_dp, golden_node, golden_trace, render_dbn, GOLDEN_DELTA, GOLDEN_TRAIN_DIR,
};
use helio_tasks::benchmarks;
use heliosched::OptimalPlanner;

fn main() {
    let node = golden_node();
    let trace = golden_trace();
    let graph = benchmarks::ecg();
    let optimal = OptimalPlanner::compute(&node, &graph, &trace, &golden_dp(), GOLDEN_DELTA)
        .expect("golden optimal plan");
    let dbn = golden_dbn(&optimal);
    std::fs::create_dir_all(GOLDEN_TRAIN_DIR).expect("golden_train dir");
    let path = format!("{GOLDEN_TRAIN_DIR}/dbn_ecg.json");
    std::fs::write(&path, render_dbn(&dbn)).expect("write golden weights");
    println!("wrote {path}");
}
