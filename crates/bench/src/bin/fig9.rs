//! Fig. 9 — DMR and energy utilisation over two months (WAM).
//!
//! Runs the WAM benchmark for 60 days of temperate weather and reports
//! (a) the per-day DMR of each scheduler against the optimal and
//! (b) the energy utilisation. Paper headline: the proposed method
//! tracks the optimal DMR but has *lower* energy utilisation than both
//! baselines (average differences 5.53 % vs \[3\] and 10.6 % vs \[9\]) —
//! maximising energy utilisation is not the same as minimising DMR.

use helio_bench::{
    baseline_capacitor, fast_mode, node_for_eval, offline_config, pct, run_planner_batch,
    sized_node, weather_trace,
};
use helio_tasks::benchmarks;
use heliosched::{train_proposed, DpConfig, FixedPlanner, OptimalPlanner, Pattern, SimReport};

fn main() {
    let (periods, days, train_days) = if fast_mode() {
        (48, 10, 4)
    } else {
        (144, 60, 10)
    };
    let graph = benchmarks::wam();
    let dp = DpConfig::default();
    let delta = 0.5;

    let training = weather_trace(train_days, periods, 2000);
    let node_train = sized_node(&graph, &training, 4).expect("sizing succeeds");
    let offline = offline_config(dp, delta);
    let proposed =
        train_proposed(&node_train, &graph, &training, &offline).expect("training succeeds");

    let eval = weather_trace(days, periods, 2024);
    let node = node_for_eval(&node_train, &eval);
    let cap = baseline_capacitor(&node);
    let optimal = OptimalPlanner::compute(&node, &graph, &eval, &dp, delta).expect("optimal");
    // All four schedulers share the node, graph and trace: evaluate
    // them as one lockstep batch.
    let mut reports = run_planner_batch(
        &node,
        &graph,
        &eval,
        vec![
            Box::new(FixedPlanner::new(Pattern::Inter, cap)),
            Box::new(FixedPlanner::new(Pattern::Intra, cap)),
            Box::new(proposed),
            Box::new(optimal),
        ],
    )
    .expect("batched evaluation");
    let optimal_report = reports.pop().expect("four runs");
    let proposed_report = reports.pop().expect("four runs");
    let intra = reports.pop().expect("four runs");
    let inter = reports.pop().expect("four runs");

    println!("# Fig. 9(a) — per-day DMR over {days} days (WAM)");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9}",
        "day", "inter[3]", "intra[9]", "proposed", "optimal"
    );
    for day in 0..days {
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>9}",
            day + 1,
            pct(inter.day_dmr(day)),
            pct(intra.day_dmr(day)),
            pct(proposed_report.day_dmr(day)),
            pct(optimal_report.day_dmr(day)),
        );
    }

    let summary = |name: &str, r: &SimReport| {
        println!(
            "{:>9}: overall DMR {} | energy utilisation {}",
            name,
            pct(r.overall_dmr()),
            pct(r.energy_utilisation())
        );
    };
    println!();
    println!("# Fig. 9(b) — energy utilisation");
    summary("inter[3]", &inter);
    summary("intra[9]", &intra);
    summary("proposed", &proposed_report);
    summary("optimal", &optimal_report);
    println!();
    println!(
        "utilisation difference (inter − proposed): {} (paper: 5.53%)",
        pct(inter.energy_utilisation() - proposed_report.energy_utilisation())
    );
    println!(
        "utilisation difference (intra − proposed): {} (paper: 10.6%)",
        pct(intra.energy_utilisation() - proposed_report.energy_utilisation())
    );
    println!(
        "DMR distance to optimal: proposed {} vs inter {} vs intra {}",
        pct(proposed_report.overall_dmr() - optimal_report.overall_dmr()),
        pct(inter.overall_dmr() - optimal_report.overall_dmr()),
        pct(intra.overall_dmr() - optimal_report.overall_dmr()),
    );
}
