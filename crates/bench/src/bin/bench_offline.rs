//! Times the offline pipeline stage by stage and emits the
//! machine-readable `results/BENCH_offline.json`.
//!
//! Stages: supercapacitor sizing (parallel per-day bracket search),
//! the optimal long-term plan (memoized + parallel DP per capacitor
//! candidate), and DBN training on the recorded samples. A final
//! micro-benchmark runs the same one-day DP through the serial
//! reference path and the cached+parallel path, checks the results are
//! identical, and reports the speedup.
//!
//! Thread count follows `HELIO_THREADS`/`HELIO_SERIAL`; the JSON
//! records what was actually used, so numbers from different machines
//! stay comparable.

use helio_bench::{
    effective_threads, fast_mode, sized_node, timed, weather_trace, BenchOfflineReport, BenchStage,
};
use helio_common::time::PeriodRef;
use helio_common::units::Joules;
use helio_storage::SuperCap;
use helio_tasks::benchmarks;
use heliosched::{
    dmr_level_subsets, optimize_horizon, optimize_horizon_serial, DpConfig, OfflineConfig,
    OptimalPlanner,
};

/// Repetitions of the DP micro-benchmark (median-free: totals are
/// compared, which is stable enough for a smoke metric).
const DP_REPS: usize = 3;

fn main() {
    let threads = effective_threads();
    let (periods, train_days, bp_epochs) = if fast_mode() {
        (48, 2, 100)
    } else {
        (48, 4, 300)
    };
    let graph = benchmarks::ecg();
    let dp = DpConfig::default();
    let mut stages = Vec::new();

    println!("# offline pipeline timings (threads = {})", threads);

    // --- Stage 1: sizing (parallel per-day bracket search) -------------
    let training = weather_trace(train_days, periods, 1000);
    let (node, sizing_ms) = timed(|| sized_node(&graph, &training, 4).expect("sizing succeeds"));
    println!("sizing          {sizing_ms:9.1} ms");
    stages.push(BenchStage {
        name: "sizing".into(),
        wall_ms: sizing_ms,
    });

    // --- Stage 2: optimal plan (memoized + parallel DP) ----------------
    let (optimal, plan_ms) = timed(|| {
        OptimalPlanner::compute(&node, &graph, &training, &dp, 0.5).expect("optimal plan")
    });
    let cache = optimal.cache_stats();
    println!(
        "optimal plan    {plan_ms:9.1} ms   cache {} hits / {} misses ({:.1}% hit rate)",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate()
    );
    stages.push(BenchStage {
        name: "optimal_plan".into(),
        wall_ms: plan_ms,
    });

    // --- Stage 3: DBN training on the recorded samples -----------------
    let samples = optimal.samples();
    let mut dbn_cfg = OfflineConfig::default().dbn;
    dbn_cfg.bp_epochs = bp_epochs;
    let (dbn, dbn_ms) = timed(|| helio_ann::Dbn::train_set(samples, &dbn_cfg).expect("dbn"));
    println!(
        "dbn train       {dbn_ms:9.1} ms   final loss {:.5}",
        dbn.final_loss()
    );
    stages.push(BenchStage {
        name: "dbn_train".into(),
        wall_ms: dbn_ms,
    });

    // --- DP micro-benchmark: serial reference vs cached+parallel -------
    let grid = training.grid();
    let solar: Vec<Vec<Joules>> = (0..grid.periods_per_day())
        .map(|j| {
            grid.slots_in(PeriodRef::new(0, j))
                .map(|s| training.slot_energy(s))
                .collect()
        })
        .collect();
    let subsets = dmr_level_subsets(&graph, dp.keep_per_level);
    let storage = &node.storage;
    let cap = SuperCap::new(node.capacitors[node.capacitors.len() / 2], storage)
        .expect("sized capacitance is valid");
    let pmu = &node.pmu;
    let run_serial = || {
        optimize_horizon_serial(
            &graph,
            &subsets,
            &solar,
            grid.slot_duration(),
            &cap,
            cap.empty_state(),
            storage,
            pmu,
            &dp,
        )
    };
    let run_fast = || {
        optimize_horizon(
            &graph,
            &subsets,
            &solar,
            grid.slot_duration(),
            &cap,
            cap.empty_state(),
            storage,
            pmu,
            &dp,
        )
    };
    let (serial_result, serial_ms) = timed(|| {
        let mut last = run_serial();
        for _ in 1..DP_REPS {
            last = run_serial();
        }
        last
    });
    let (fast_result, fast_ms) = timed(|| {
        let mut last = run_fast();
        for _ in 1..DP_REPS {
            last = run_fast();
        }
        last
    });
    let dp_matches_serial = serial_result == fast_result;
    assert!(dp_matches_serial, "cached+parallel DP diverged from serial");
    let dp_speedup = serial_ms / fast_ms.max(1e-9);
    println!("dp serial ref   {serial_ms:9.1} ms  ({DP_REPS} reps)");
    println!("dp cached+par   {fast_ms:9.1} ms  ({DP_REPS} reps)  speedup {dp_speedup:.2}x");
    stages.push(BenchStage {
        name: "dp_serial_reference".into(),
        wall_ms: serial_ms,
    });
    stages.push(BenchStage {
        name: "dp_cached_parallel".into(),
        wall_ms: fast_ms,
    });

    let report = BenchOfflineReport {
        threads,
        stages,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_hit_rate: cache.hit_rate(),
        dp_speedup_vs_serial: dp_speedup,
        dp_matches_serial,
    };
    println!();
    helio_bench::write_json("results/BENCH_offline.json", &report);
}
