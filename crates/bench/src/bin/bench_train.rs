//! Times the DBN training pipeline stage by stage and emits the
//! machine-readable `results/BENCH_train.json`.
//!
//! The training set is the real thing: the optimal planner's recorded
//! `(observation, decision)` samples on the four-day training trace the
//! offline benchmark uses. Three stages are timed by replicating
//! `Dbn::train`'s phases through the public API — `scaler` (min–max
//! fit + transforms), `cd1` (greedy RBM pre-training), `backprop`
//! (supervised fine-tuning) — plus the end-to-end `Dbn::train` call
//! whose wall-clock is the headline number compared against the
//! committed pre-refactor baseline
//! (`results/BENCH_train_baseline.json`).
//!
//! The node uses a fixed capacitance ladder (not the sizing pipeline),
//! so the training set is invariant to sizing-model changes and the
//! baseline comparison stays apples to apples.

use helio_ann::{Dbn, Matrix, MinMaxScaler, Mlp, Rbm};
use helio_bench::{
    effective_threads, fast_mode, paper_grid, standard_sizes, timed, weather_trace, BenchStage,
    BenchTrainReport,
};
use helio_common::rng::seeded;
use helio_tasks::benchmarks;
use heliosched::{DpConfig, NodeConfig, OfflineConfig, OptimalPlanner};

/// Repetitions each stage is summed over (totals are compared, which is
/// stable enough for a smoke metric).
const REPS: usize = 3;

fn main() {
    let threads = effective_threads();
    let (train_days, periods, bp_epochs) = if fast_mode() {
        (2, 48, 100)
    } else {
        (4, 48, 300)
    };
    let graph = benchmarks::ecg();
    let training = weather_trace(train_days, periods, 1000);
    let node = NodeConfig::builder(paper_grid(train_days, periods))
        .capacitors(&standard_sizes())
        .build()
        .expect("bench node config is valid");
    let mut cfg = OfflineConfig::default().dbn;
    cfg.bp_epochs = bp_epochs;

    println!("# training pipeline timings (threads = {})", threads);

    let optimal = OptimalPlanner::compute(&node, &graph, &training, &DpConfig::default(), 0.5)
        .expect("optimal plan");
    let set = optimal.samples();
    let (samples, in_dim, out_dim) = (set.len(), set.input_dim(), set.output_dim());
    println!("samples         {samples} ({in_dim} features -> {out_dim} targets)");

    // --- Staged replication of Dbn::train_set through the public API ---
    let mut scaler_ms = 0.0;
    let mut cd1_ms = 0.0;
    let mut backprop_ms = 0.0;
    for _ in 0..REPS {
        // Stage 1: scaler fit + transforms on the packed matrices.
        let ((xs, ys), ms) = timed(|| {
            let input_scaler = MinMaxScaler::fit_matrix(&set.inputs).expect("fit inputs");
            let output_scaler = MinMaxScaler::fit_matrix(&set.targets).expect("fit targets");
            let mut xs = Matrix::zeros(samples, in_dim);
            let mut ys = Matrix::zeros(samples, out_dim);
            for r in 0..samples {
                input_scaler
                    .transform_slice(set.inputs.row(r), xs.row_mut(r))
                    .expect("transform");
                output_scaler
                    .transform_slice(set.targets.row(r), ys.row_mut(r))
                    .expect("transform");
                for y in ys.row_mut(r) {
                    *y = 0.05 + 0.9 * *y;
                }
            }
            (xs, ys)
        });
        scaler_ms += ms;

        // Stage 2: greedy CD-1 pre-training of the RBM stack.
        let mut rng = seeded(cfg.seed);
        let (rbms, ms) = timed(|| {
            let mut rbms: Vec<Rbm> = Vec::with_capacity(cfg.hidden.len());
            let mut layer_input = xs.clone();
            let mut prev_dim = in_dim;
            for &h in &cfg.hidden {
                let mut rbm = Rbm::new(prev_dim, h, &mut rng);
                rbm.train_matrix(&layer_input, cfg.rbm_epochs, cfg.rbm_lr, &mut rng)
                    .expect("rbm trains");
                layer_input = rbm
                    .hidden_probs_batch_matrix(&layer_input)
                    .expect("batch probs");
                prev_dim = h;
                rbms.push(rbm);
            }
            rbms
        });
        cd1_ms += ms;

        // Stage 3: supervised back-propagation fine-tuning.
        let (_loss, ms) = timed(|| {
            let mut sizes = vec![in_dim];
            sizes.extend_from_slice(&cfg.hidden);
            sizes.push(out_dim);
            let mut network = Mlp::new(&sizes, &mut rng).expect("mlp");
            for (i, rbm) in rbms.iter().enumerate() {
                network
                    .load_layer(i, rbm.weights().clone(), rbm.hidden_bias().to_vec())
                    .expect("load layer");
            }
            network
                .train_matrix(&xs, &ys, cfg.bp_epochs, cfg.bp_lr)
                .expect("bp trains")
        });
        backprop_ms += ms;
    }
    println!("scaler          {scaler_ms:9.1} ms  ({REPS} reps)");
    println!("cd1             {cd1_ms:9.1} ms  ({REPS} reps)");
    println!("backprop        {backprop_ms:9.1} ms  ({REPS} reps)");

    // --- End-to-end Dbn::train_set (the headline number) ----------------
    let (dbn, total_ms) = timed(|| {
        let mut last = Dbn::train_set(set, &cfg).expect("dbn trains");
        for _ in 1..REPS {
            last = Dbn::train_set(set, &cfg).expect("dbn trains");
        }
        last
    });
    println!(
        "dbn train       {total_ms:9.1} ms  ({REPS} reps)  final loss {:.5}",
        dbn.final_loss()
    );

    let baseline_total_ms = std::fs::read_to_string("results/BENCH_train_baseline.json")
        .ok()
        .and_then(|s| serde_json::from_str::<BenchTrainReport>(&s).ok())
        .map(|b| b.dbn_train_total_ms);
    let speedup = baseline_total_ms.map(|b| b / total_ms.max(1e-9));
    if let (Some(b), Some(s)) = (baseline_total_ms, speedup) {
        println!("baseline        {b:9.1} ms  speedup {s:.2}x");
    }

    let report = BenchTrainReport {
        threads,
        samples,
        in_dim,
        out_dim,
        bp_epochs,
        stages: vec![
            BenchStage {
                name: "scaler".into(),
                wall_ms: scaler_ms,
            },
            BenchStage {
                name: "cd1".into(),
                wall_ms: cd1_ms,
            },
            BenchStage {
                name: "backprop".into(),
                wall_ms: backprop_ms,
            },
        ],
        dbn_train_total_ms: total_ms,
        reps: REPS,
        baseline_total_ms,
        speedup_vs_baseline: speedup,
    };
    println!();
    helio_bench::write_json("results/BENCH_train.json", &report);
}
