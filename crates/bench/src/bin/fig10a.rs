//! Fig. 10(a) — DMR and complexity under different solar prediction
//! lengths (random case 1, one month).
//!
//! The proposed planner's MPC backend re-plans daily over a horizon of
//! forecast solar whose error grows with distance. Paper headline: DMR
//! improves with the horizon up to an optimum (48 h in the paper),
//! degrades slowly beyond it (long predictions are inaccurate, but
//! inter-day migration is rare so the damage is bounded), while
//! complexity grows with the horizon.

use helio_bench::{fast_mode, node_for_eval, pct, run_planner_batch, sized_node, weather_trace};
use helio_solar::NoisyOracle;
use helio_tasks::benchmarks;
use heliosched::{DpConfig, PeriodPlanner, ProposedPlanner, SwitchRule};

fn main() {
    let (periods, days) = if fast_mode() { (48, 5) } else { (144, 30) };
    let graph = benchmarks::random_case(1);
    let dp = DpConfig::default();
    let delta = 0.5;

    let sizing_trace = weather_trace(6, periods, 3000);
    let node_sized = sized_node(&graph, &sizing_trace, 4).expect("sizing succeeds");
    let eval = weather_trace(days, periods, 3024);
    let node = node_for_eval(&node_sized, &eval);

    let hours = if fast_mode() {
        vec![3usize, 12, 48]
    } else {
        vec![3, 6, 12, 24, 48, 96]
    };
    // Periods per hour on this grid.
    let per_hour = (periods as f64 / 24.0).round() as usize;

    println!("# Fig. 10(a) — DMR and complexity vs prediction length (random1, {days} days)");
    println!("{:>10} {:>9} {:>14}", "horizon", "DMR", "complexity");
    // One horizon per scenario, all sharing the node/graph/trace: run
    // the whole sweep as a single lockstep batch.
    let planners: Vec<Box<dyn PeriodPlanner>> = hours
        .iter()
        .map(|&h| {
            let horizon_periods = (h * per_hour).max(1);
            // Forecast error grows 12 %/day of distance on top of a 2 %
            // floor — the controllable stand-in for "long predictions
            // are inaccurate".
            let oracle = NoisyOracle::new(777, 0.02, 0.12);
            Box::new(ProposedPlanner::mpc(
                Box::new(oracle),
                horizon_periods,
                dp,
                delta,
                SwitchRule::default(),
            )) as Box<dyn PeriodPlanner>
        })
        .collect();
    let reports = run_planner_batch(&node, &graph, &eval, planners).expect("mpc sweep");
    let mut series: Vec<(usize, f64, u64)> = Vec::new();
    for (&h, report) in hours.iter().zip(&reports) {
        println!(
            "{:>9}h {:>9} {:>14}",
            h,
            pct(report.overall_dmr()),
            report.complexity
        );
        series.push((h, report.overall_dmr(), report.complexity));
    }

    let best = series
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty series");
    println!();
    println!(
        "best horizon: {} h at DMR {} (paper: optimum at 48 h, 68.9%, degrading to 70.2% at 96 h)",
        best.0,
        pct(best.1)
    );
}
