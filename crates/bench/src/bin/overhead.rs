//! Section 6.5 — algorithm overhead on the 93.5 kHz node.
//!
//! The paper measures 14.6 s / 3.0 mW per coarse (ANN) execution and
//! 3.47 s / 2.94 mW per fine-grained execution, totalling less than
//! 3 % of the node's energy. Here the same numbers are derived from
//! operation counts.

use helio_bench::paper_grid;
use helio_tasks::benchmarks;
use heliosched::OverheadModel;

fn main() {
    let grid = paper_grid(1, 144);
    let model = OverheadModel::default();
    println!(
        "# Section 6.5 — algorithm overhead at {:.1} kHz",
        model.clock_hz / 1e3
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "coarse (s)", "fine (s)", "coarse mW", "fine mW", "energy %"
    );
    for g in benchmarks::all_six() {
        let r = model.estimate(&g, &grid);
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>9.2}%",
            g.name(),
            r.coarse_time_s,
            r.fine_time_s,
            r.coarse_power_mw,
            r.fine_power_mw,
            r.energy_fraction * 100.0
        );
    }
    println!();
    println!("paper: coarse 14.6 s / 3.0 mW, fine 3.47 s / 2.94 mW, < 3% of total energy");
}
