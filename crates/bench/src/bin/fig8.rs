//! Fig. 8 — DMR in four individual days with six benchmarks.
//!
//! For every benchmark: size the capacitor bank offline, train the
//! proposed planner's DBN on a training trace, then evaluate the
//! inter-task baseline \[3\], the intra-task baseline \[9\], the proposed
//! scheduler and the static optimal on the four archetype days.
//!
//! Paper headline: the proposed method reduces DMR by up to 27.8 %
//! versus \[3\], stays within ~3.7 % of the optimal on average, and its
//! advantage grows as solar energy decreases (Day 1 → Day 4).

use helio_bench::{
    baseline_capacitor, fast_mode, four_day_trace, node_for_eval, offline_config, par_sweep, pct,
    run_planner_batch, sized_node, weather_trace,
};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::{train_proposed, DpConfig, FixedPlanner, OptimalPlanner, Pattern};

/// The full pipeline for one benchmark: size, train, then evaluate all
/// four schedulers as one lockstep batch (they share the node, graph
/// and trace, so the DBN planner's inference and the shared plan
/// context are amortised). Returns one `(inter, intra, proposed,
/// optimal)` DMR tuple per day. Each benchmark is independent, so the
/// six run concurrently.
fn run_benchmark(
    graph: &TaskGraph,
    periods: usize,
    train_days: usize,
    dp: DpConfig,
    delta: f64,
) -> Vec<(f64, f64, f64, f64)> {
    let training = weather_trace(train_days, periods, 1000);
    let node_train = sized_node(graph, &training, 4).expect("sizing succeeds");

    let offline = offline_config(dp, delta);
    let proposed =
        train_proposed(&node_train, graph, &training, &offline).expect("training succeeds");

    let eval = four_day_trace(periods, 7);
    let node = node_for_eval(&node_train, &eval);
    let cap = baseline_capacitor(&node);
    let optimal = OptimalPlanner::compute(&node, graph, &eval, &dp, delta).expect("optimal");
    let reports = run_planner_batch(
        &node,
        graph,
        &eval,
        vec![
            Box::new(FixedPlanner::new(Pattern::Inter, cap)),
            Box::new(FixedPlanner::new(Pattern::Intra, cap)),
            Box::new(proposed),
            Box::new(optimal),
        ],
    )
    .expect("batched evaluation");

    (0..4)
        .map(|day| {
            (
                reports[0].day_dmr(day),
                reports[1].day_dmr(day),
                reports[2].day_dmr(day),
                reports[3].day_dmr(day),
            )
        })
        .collect()
}

fn main() {
    let (periods, train_days) = if fast_mode() { (48, 3) } else { (144, 6) };
    let dp = DpConfig::default();
    let delta = 0.5;

    println!("# Fig. 8 — DMR in four individual days with six benchmarks");
    println!(
        "{:>9} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "bench", "day", "inter[3]", "intra[9]", "proposed", "optimal"
    );

    let mut improvements: Vec<f64> = Vec::new();
    let mut opt_gaps: Vec<f64> = Vec::new();
    let mut day_gains = vec![Vec::new(); 4];

    // Fan the six benchmarks out across the worker pool; `par_sweep`
    // returns results in benchmark order, so the table below is stable
    // regardless of which benchmark finishes first.
    let graphs = benchmarks::all_six();
    let results = par_sweep(&graphs, |graph| {
        run_benchmark(graph, periods, train_days, dp, delta)
    });

    for (graph, rows) in graphs.iter().zip(&results) {
        for (day, row) in rows.iter().enumerate() {
            println!(
                "{:>9} {:>5} {:>9} {:>9} {:>9} {:>9}",
                graph.name(),
                day + 1,
                pct(row.0),
                pct(row.1),
                pct(row.2),
                pct(row.3)
            );
            improvements.push(row.0 - row.2);
            opt_gaps.push(row.2 - row.3);
            day_gains[day].push(row.0 - row.2);
        }
    }

    let max_impr = improvements.iter().cloned().fold(f64::MIN, f64::max);
    let avg_gap = opt_gaps.iter().sum::<f64>() / opt_gaps.len() as f64;
    println!();
    println!(
        "max DMR reduction vs inter-task [3]: {} (paper: up to 27.8%)",
        pct(max_impr)
    );
    println!("average gap to optimal: {} (paper: 3.69%)", pct(avg_gap));
    print!("average gain per day (proposed vs inter): ");
    for (d, gains) in day_gains.iter().enumerate() {
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        print!("day{}={} ", d + 1, pct(avg));
    }
    println!();
    println!("(paper: the proposed method improves more as solar decreases, Day1 -> Day4)");
}
