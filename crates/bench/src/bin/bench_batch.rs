//! Batched vs sequential simulation throughput — emits the
//! machine-readable `results/BENCH_batch.json`.
//!
//! The sweep advances B independent DBN-planned scenarios (same node
//! and task set, different weather-seeded traces) at B ∈ {1, 4, 16,
//! 64}, twice per batch size:
//!
//! * **sequential** — one [`Engine::run`] per scenario, the
//!   one-at-a-time mode every sweep used before the batch engine;
//! * **batched** — one [`BatchEngine::run`] over all B scenarios in
//!   lockstep, gathering the B DBN feature vectors into one matrix and
//!   running a single batched forward per period, with the slot-cost /
//!   topological-order precomputation shared behind one `Arc`.
//!
//! Correctness is asserted before anything is timed: the batched
//! reports must be byte-identical to the sequential ones (the same
//! contract `tests/golden_online.rs` pins over the golden suite). The
//! grid uses two 300 s slots per period so the per-period planner
//! decision — the part batching accelerates — dominates the slot loop,
//! as it does on the paper's 93.5 kHz node where one DBN forward costs
//! orders of magnitude more than the slot bookkeeping. `HELIO_FAST=1`
//! shrinks the horizon and repetitions for CI smoke runs.

use std::hint::black_box;
use std::sync::Arc;

use helio_ann::{Dbn, DbnConfig};
use helio_bench::{
    effective_threads, fast_mode, timed, write_json, BatchSweepPoint, BenchBatchReport,
};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_solar::{SolarPanel, SolarTrace, TraceBuilder, WeatherProcess};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::{BatchEngine, BatchScenario, Engine, NodeConfig, ProposedPlanner, SwitchRule};

const REPORT_PATH: &str = "results/BENCH_batch.json";
const DELTA: f64 = 0.5;
const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];

fn planner(dbn: &Arc<Dbn>) -> ProposedPlanner {
    ProposedPlanner::from_shared_dbn(Arc::clone(dbn), DELTA, SwitchRule::default())
}

/// Trains a deployment-sized network (two wide RBM layers, unlike the
/// golden suite's toy net) on synthetic scheduler-shaped samples — the
/// decision cost is what the sweep measures, not the decision quality.
fn bench_dbn(graph: &TaskGraph, in_dim: usize) -> Arc<Dbn> {
    let out_dim = 2 + graph.len();
    let inputs: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..in_dim)
                .map(|k| ((i * 7 + k * 13) % 50) as f64 / 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..64)
        .map(|i| (0..out_dim).map(|k| ((i + k) % 2) as f64).collect())
        .collect();
    let cfg = DbnConfig {
        hidden: vec![128, 128],
        rbm_epochs: 10,
        rbm_lr: 0.1,
        bp_epochs: 30,
        bp_lr: 0.4,
        seed: 9,
    };
    Arc::new(Dbn::train(&inputs, &targets, &cfg).expect("bench DBN trains"))
}

fn run_sequential(
    node: &NodeConfig,
    graph: &TaskGraph,
    traces: &[SolarTrace],
    dbn: &Arc<Dbn>,
) -> Vec<String> {
    traces
        .iter()
        .map(|trace| {
            let mut p = planner(dbn);
            let report = Engine::new(node, graph, trace)
                .expect("sequential engine")
                .run(&mut p)
                .expect("sequential run");
            serde_json::to_string(&report).expect("report serialises")
        })
        .collect()
}

fn run_batched(
    node: &NodeConfig,
    graph: &TaskGraph,
    traces: &[SolarTrace],
    dbn: &Arc<Dbn>,
) -> Vec<String> {
    let mut engine = BatchEngine::new(node, graph).expect("batch engine");
    for trace in traces {
        engine
            .push(BatchScenario::new(trace, Box::new(planner(dbn))))
            .expect("batch scenario");
    }
    engine
        .run()
        .expect("batched run")
        .iter()
        .map(|r| serde_json::to_string(r).expect("report serialises"))
        .collect()
}

fn main() {
    let threads = effective_threads();
    let (days, periods_per_day, reps) = if fast_mode() { (2, 24, 3) } else { (4, 144, 8) };
    let grid = TimeGrid::new(days, periods_per_day, 2, Seconds::new(300.0)).expect("bench grid");
    let graph = benchmarks::ecg();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .expect("bench node");
    let in_dim = grid.slots_per_period() + node.capacitors.len() + 1;
    let dbn = bench_dbn(&graph, in_dim);
    let total_periods = grid.total_periods() as u64;

    let traces: Vec<SolarTrace> = (0..*BATCH_SIZES.iter().max().expect("nonempty"))
        .map(|i| {
            TraceBuilder::new(grid, SolarPanel::paper_panel())
                .seed(9000 + i as u64)
                .weather(WeatherProcess::temperate())
                .build()
        })
        .collect();

    println!(
        "# batched vs sequential throughput (ecg, {days}d x {periods_per_day}p x 2s grid, \
         {total_periods} periods/scenario, {reps} reps, threads = {})",
        threads
    );
    println!(
        "{:>6} {:>14} {:>14} {:>16} {:>16} {:>8}",
        "B", "seq ms", "batch ms", "seq per/s", "batch per/s", "speedup"
    );

    let mut points = Vec::new();
    let mut identical = true;
    for &b in &BATCH_SIZES {
        // Correctness before throughput: the batched reports must be
        // byte-identical to the sequential ones.
        let seq_json = run_sequential(&node, &graph, &traces[..b], &dbn);
        let batch_json = run_batched(&node, &graph, &traces[..b], &dbn);
        let matches = seq_json == batch_json;
        assert!(
            matches,
            "batched run diverged from sequential at B = {b} — the batch \
             engine's byte-identity contract is broken"
        );
        identical &= matches;

        let (_, sequential_wall_ms) = timed(|| {
            for _ in 0..reps {
                for trace in &traces[..b] {
                    let mut p = planner(&dbn);
                    let report = Engine::new(&node, &graph, trace)
                        .expect("sequential engine")
                        .run(&mut p)
                        .expect("sequential run");
                    black_box(report);
                }
            }
        });
        let (_, batched_wall_ms) = timed(|| {
            for _ in 0..reps {
                let mut engine = BatchEngine::new(&node, &graph).expect("batch engine");
                for trace in &traces[..b] {
                    engine
                        .push(BatchScenario::new(trace, Box::new(planner(&dbn))))
                        .expect("batch scenario");
                }
                black_box(engine.run().expect("batched run"));
            }
        });

        let periods = b as u64 * total_periods * reps as u64;
        let sequential_periods_per_sec = periods as f64 / (sequential_wall_ms / 1e3);
        let batched_periods_per_sec = periods as f64 / (batched_wall_ms / 1e3);
        let speedup = sequential_wall_ms / batched_wall_ms;
        println!(
            "{b:>6} {sequential_wall_ms:>14.1} {batched_wall_ms:>14.1} \
             {sequential_periods_per_sec:>16.0} {batched_periods_per_sec:>16.0} {speedup:>7.2}x"
        );
        points.push(BatchSweepPoint {
            batch: b,
            periods,
            sequential_wall_ms,
            batched_wall_ms,
            sequential_periods_per_sec,
            batched_periods_per_sec,
            speedup,
        });
    }

    let report = BenchBatchReport {
        threads,
        grid: format!("{days}d x {periods_per_day}p x 2s"),
        backend: "proposed-dbn".into(),
        identical,
        points,
    };
    println!();
    write_json(REPORT_PATH, &report);

    let p16 = report
        .points
        .iter()
        .find(|p| p.batch == 16)
        .expect("B = 16 point");
    println!(
        "B = 16 speedup: {:.2}x (target: >= 2x batched over sequential)",
        p16.speedup
    );
}
