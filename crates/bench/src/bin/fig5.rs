//! Fig. 5 — tested efficiencies of the input and output regulators.
//!
//! Prints the efficiency of both regulator fits across the capacitor
//! voltage window; the paper's figure shows the same rising curves
//! obtained from bench measurements.

use helio_common::units::Volts;
use helio_storage::RegulatorCurve;

fn main() {
    let chr = RegulatorCurve::default_charge();
    let dis = RegulatorCurve::default_discharge();
    println!("# Fig. 5 — regulator efficiency vs capacitor voltage");
    println!("{:>8} {:>10} {:>10}", "V (V)", "eta_chr", "eta_dis");
    let mut v = 0.5;
    while v <= 5.0 + 1e-9 {
        println!(
            "{:>8.2} {:>10.3} {:>10.3}",
            v,
            chr.efficiency(Volts::new(v)),
            dis.efficiency(Volts::new(v))
        );
        v += 0.25;
    }
    println!();
    println!(
        "shape check: eta_chr rises {:.3} -> {:.3}, eta_dis rises {:.3} -> {:.3}",
        chr.efficiency(Volts::new(1.0)),
        chr.efficiency(Volts::new(5.0)),
        dis.efficiency(Volts::new(1.0)),
        dis.efficiency(Volts::new(5.0)),
    );
}
