//! Times the *online* hot path and emits the machine-readable
//! `results/BENCH_online.json` — the counterpart of `bench_offline`.
//!
//! Two measurements:
//!
//! * **Slot-loop throughput** — full `Engine::run` sweeps (ECG, four
//!   archetype days, golden node) per fine-grained pattern, reported as
//!   slots per second. This is the paper's simulation inner loop.
//! * **Per-period decision cost** — `PeriodPlanner::plan` latency per
//!   planner (the three fixed patterns, the optimal LUT replay, the
//!   trained DBN, both compiled-DBN tiers, and the distilled
//!   branch-free artifact), the quantity the
//!   paper's Section 6.5 overhead table models on the 93.5 kHz node.
//!
//! With `HELIO_BENCH_BASELINE=1` the report is written to
//! `results/BENCH_online_baseline.json` instead (done once on the
//! pre-refactor engine); the normal mode reads that file back and
//! reports the throughput speedup against it. `HELIO_FAST=1` shrinks
//! repetitions for CI smoke runs.

use std::hint::black_box;

use helio_ann::{CompiledDbn, CompiledTier};
use helio_bench::golden::{
    golden_dbn, golden_distilled_policy, golden_dp, golden_node, golden_trace, GOLDEN_DELTA,
};
use helio_bench::{
    effective_threads, fast_mode, timed, BenchOnlineReport, DecisionStat, SlotLoopStat,
};
use helio_storage::CapacitorBank;
use helio_tasks::benchmarks;
use heliosched::{
    Engine, FixedPlanner, OptimalPlanner, Pattern, PeriodPlanner, PlannerObservation,
    ProposedPlanner, SwitchRule,
};

const BASELINE_PATH: &str = "results/BENCH_online_baseline.json";
const REPORT_PATH: &str = "results/BENCH_online.json";

fn main() {
    let threads = effective_threads();
    let baseline_mode = std::env::var("HELIO_BENCH_BASELINE").is_ok_and(|v| v == "1");
    let (loop_reps, decision_reps) = if fast_mode() { (10, 5) } else { (300, 100) };

    let node = golden_node();
    let trace = golden_trace();
    let graph = benchmarks::ecg();
    let engine = Engine::new(&node, &graph, &trace).expect("bench engine");
    let grid = &node.grid;
    let slots_per_run = (grid.total_periods() * grid.slots_per_period()) as u64;

    println!(
        "# online hot-path timings (threads = {}, {} slots/run × {loop_reps} reps)",
        threads, slots_per_run
    );

    // --- Slot-loop throughput per pattern ------------------------------
    let mut slot_loop = Vec::new();
    let mut total_slots = 0u64;
    let mut total_ms = 0.0f64;
    for (pattern, cap) in [
        (Pattern::Asap, 0usize),
        (Pattern::Inter, 1),
        (Pattern::Intra, 1),
    ] {
        let (_, wall_ms) = timed(|| {
            for _ in 0..loop_reps {
                let report = engine
                    .run(&mut FixedPlanner::new(pattern, cap))
                    .expect("bench run");
                black_box(report);
            }
        });
        let slots = slots_per_run * loop_reps as u64;
        let slots_per_sec = slots as f64 / (wall_ms / 1e3);
        println!("slot loop {pattern:>5}  {wall_ms:9.1} ms   {slots_per_sec:12.0} slots/s");
        total_slots += slots;
        total_ms += wall_ms;
        slot_loop.push(SlotLoopStat {
            pattern: pattern.to_string(),
            slots,
            wall_ms,
            slots_per_sec,
        });
    }
    let slots_per_sec_overall = total_slots as f64 / (total_ms / 1e3);
    println!("slot loop all    {total_ms:9.1} ms   {slots_per_sec_overall:12.0} slots/s");

    // --- Per-period planner decision cost ------------------------------
    let dp = golden_dp();
    let optimal = OptimalPlanner::compute(&node, &graph, &trace, &dp, GOLDEN_DELTA)
        .expect("optimal plan for decision bench");
    let dbn = std::sync::Arc::new(golden_dbn(&optimal));
    let mut planners: Vec<(&str, Box<dyn PeriodPlanner>)> = vec![
        ("asap", Box::new(FixedPlanner::new(Pattern::Asap, 0))),
        ("inter", Box::new(FixedPlanner::new(Pattern::Inter, 1))),
        ("intra", Box::new(FixedPlanner::new(Pattern::Intra, 1))),
        ("optimal", Box::new(optimal)),
        (
            "proposed-dbn",
            Box::new(ProposedPlanner::from_shared_dbn(
                std::sync::Arc::clone(&dbn),
                GOLDEN_DELTA,
                SwitchRule::default(),
            )),
        ),
        (
            "compiled-dbn",
            Box::new(
                ProposedPlanner::compile_dbn(
                    &dbn,
                    CompiledTier::F32,
                    GOLDEN_DELTA,
                    SwitchRule::default(),
                )
                .expect("golden DBN compiles"),
            ),
        ),
        (
            "compiled-dbn-i8",
            Box::new(
                ProposedPlanner::compile_dbn(
                    &dbn,
                    CompiledTier::Int8,
                    GOLDEN_DELTA,
                    SwitchRule::default(),
                )
                .expect("golden DBN compiles"),
            ),
        ),
        (
            "distilled",
            Box::new(ProposedPlanner::from_distilled(
                std::sync::Arc::new(golden_distilled_policy(&dbn)),
                std::sync::Arc::new(
                    CompiledDbn::compile(&dbn, CompiledTier::F32).expect("golden DBN compiles"),
                ),
                GOLDEN_DELTA,
                SwitchRule::default(),
            )),
        ),
    ];
    let bank = CapacitorBank::new(&node.capacitors, &node.storage).expect("bench bank");
    let mut planner_decision = Vec::new();
    for (label, planner) in &mut planners {
        let (_, wall_ms) = timed(|| {
            for _ in 0..decision_reps {
                for period in grid.periods() {
                    let obs = PlannerObservation {
                        grid,
                        period,
                        graph: &graph,
                        trace: &trace,
                        bank: &bank,
                        accumulated_dmr: 0.25,
                        storage: &node.storage,
                        pmu: &node.pmu,
                    };
                    black_box(planner.plan(&obs));
                }
            }
        });
        let decisions = (grid.total_periods() * decision_reps) as u64;
        let us_per_decision = wall_ms * 1e3 / decisions as f64;
        println!("decision {label:>12}  {wall_ms:9.1} ms   {us_per_decision:9.3} us/decision");
        planner_decision.push(DecisionStat {
            planner: (*label).to_string(),
            decisions,
            wall_ms,
            us_per_decision,
        });
    }

    // --- Baseline comparison -------------------------------------------
    let (baseline_slots_per_sec, speedup_vs_baseline) = if baseline_mode {
        (None, None)
    } else {
        match std::fs::read_to_string(BASELINE_PATH)
            .ok()
            .and_then(|s| serde_json::from_str::<BenchOnlineReport>(&s).ok())
        {
            Some(base) => {
                let speedup = slots_per_sec_overall / base.slots_per_sec_overall;
                println!(
                    "speedup vs baseline ({:.0} slots/s): {speedup:.2}x",
                    base.slots_per_sec_overall
                );
                (Some(base.slots_per_sec_overall), Some(speedup))
            }
            None => {
                println!("no baseline at {BASELINE_PATH}; skipping speedup");
                (None, None)
            }
        }
    };

    let report = BenchOnlineReport {
        threads,
        slot_loop,
        slots_per_sec_overall,
        planner_decision,
        baseline_slots_per_sec,
        speedup_vs_baseline,
    };
    let path = if baseline_mode {
        BASELINE_PATH
    } else {
        REPORT_PATH
    };
    println!();
    helio_bench::write_json(path, &report);
}
