//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. the Eq. 22 capacitor-switch threshold `E_th` (never/default/always
//!    switch),
//! 2. the pattern-selection threshold `δ` (Section 5.2),
//! 3. the planner backend (DBN vs MPC-with-noise vs MPC-with-oracle),
//! 4. sizing (the sized `H`-capacitor bank vs one fixed capacitor),
//! 5. DVFS slow-down of the whole task set under scarce solar (the
//!    refs \[5, 6\] direction).
//!
//! All runs use a compact grid (48 periods/day) so the whole suite
//! completes in roughly a minute.

use helio_bench::{node_for_eval, par_sweep, pct, run_planner_batch, sized_node, weather_trace};
use helio_common::units::Joules;
use helio_solar::NoisyOracle;
use helio_tasks::{benchmarks, scale_graph, DvfsLaw};
use heliosched::{
    train_proposed, DpConfig, Engine, FixedPlanner, NodeConfig, OfflineConfig, OptimalPlanner,
    Pattern, PeriodPlanner, ProposedPlanner, SwitchRule,
};

const PERIODS: usize = 48;
const DAYS: usize = 6;

fn mpc(noise: (f64, f64), switch: SwitchRule, delta: f64) -> ProposedPlanner {
    ProposedPlanner::mpc(
        Box::new(NoisyOracle::new(77, noise.0, noise.1)),
        PERIODS,
        DpConfig::default(),
        delta,
        switch,
    )
}

fn main() {
    let graph = benchmarks::wam();
    let sizing_trace = weather_trace(8, PERIODS, 5000);
    let node_sized = sized_node(&graph, &sizing_trace, 4).expect("sizing succeeds");
    let eval = weather_trace(DAYS, PERIODS, 5042);
    let node = node_for_eval(&node_sized, &eval);
    let engine = Engine::new(&node, &graph, &eval).expect("engine");

    // ------------------------------------------------------------------
    println!("# Ablation 1 — capacitor-switch threshold E_th (Eq. 22), MPC backend");
    // The thresholds share the node/graph/trace: run the sweep as one
    // lockstep batch and print in input order.
    let e_th_cases = [
        ("always switch (E_th = inf)", f64::INFINITY),
        ("default (E_th = 2 J)", 2.0),
        ("never switch (E_th = 0)", 0.0),
    ];
    let e_th_planners: Vec<Box<dyn PeriodPlanner>> = e_th_cases
        .iter()
        .map(|(_, e_th)| {
            Box::new(mpc(
                (0.05, 0.12),
                SwitchRule {
                    threshold: Joules::new(*e_th),
                },
                0.5,
            )) as Box<dyn PeriodPlanner>
        })
        .collect();
    let e_th_reports = run_planner_batch(&node, &graph, &eval, e_th_planners).expect("e_th sweep");
    for ((label, _), report) in e_th_cases.iter().zip(&e_th_reports) {
        println!("  {label:<28} DMR {}", pct(report.overall_dmr()));
    }

    // ------------------------------------------------------------------
    println!();
    println!("# Ablation 2 — pattern-selection threshold delta (Section 5.2)");
    let deltas = [0.1, 0.3, 0.5, 1.0, 2.0];
    let delta_planners: Vec<Box<dyn PeriodPlanner>> = deltas
        .iter()
        .map(|delta| {
            Box::new(mpc((0.05, 0.12), SwitchRule::default(), *delta)) as Box<dyn PeriodPlanner>
        })
        .collect();
    let delta_reports =
        run_planner_batch(&node, &graph, &eval, delta_planners).expect("delta sweep");
    let delta_rows: Vec<(f64, usize, usize)> = delta_reports
        .iter()
        .map(|r| {
            let (_, inter, intra) = heliosched::analysis::pattern_usage(r);
            (r.overall_dmr(), inter, intra)
        })
        .collect();
    for (delta, (dmr, inter, intra)) in deltas.iter().zip(&delta_rows) {
        println!(
            "  delta = {delta:<4} DMR {}  (inter {} / intra {} periods)",
            pct(*dmr),
            inter,
            intra
        );
    }

    // ------------------------------------------------------------------
    println!();
    println!("# Ablation 3 — planner backend");
    {
        let mut offline = OfflineConfig::default();
        offline.dbn.bp_epochs = 400;
        let training = weather_trace(8, PERIODS, 5000);
        let node_train = NodeConfig {
            grid: *training.grid(),
            ..node_sized.clone()
        };
        let mut dbn = train_proposed(&node_train, &graph, &training, &offline).expect("training");
        let r = engine.run(&mut dbn).expect("run");
        println!(
            "  DBN (paper's deployed design)   DMR {}",
            pct(r.overall_dmr())
        );
    }
    for (label, noise) in [
        ("MPC, noisy forecast", (0.05, 0.12)),
        ("MPC, perfect oracle", (0.0, 0.0)),
    ] {
        let mut planner = mpc(noise, SwitchRule::default(), 0.5);
        let r = engine.run(&mut planner).expect("run");
        println!("  {label:<30} DMR {}", pct(r.overall_dmr()));
    }
    {
        let mut optimal = OptimalPlanner::compute(&node, &graph, &eval, &DpConfig::default(), 0.5)
            .expect("optimal");
        let r = engine.run(&mut optimal).expect("run");
        println!(
            "  static optimal (upper bound)   DMR {}",
            pct(r.overall_dmr())
        );
    }

    // ------------------------------------------------------------------
    println!();
    println!("# Ablation 4 — sizing: sized 4-capacitor bank vs one fixed capacitor");
    {
        let mut optimal = OptimalPlanner::compute(&node, &graph, &eval, &DpConfig::default(), 0.5)
            .expect("optimal");
        let r = engine.run(&mut optimal).expect("run");
        println!(
            "  sized bank {:?} F  DMR {}  migr.eff {}",
            node.capacitors
                .iter()
                .map(|c| (c.value() * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
            pct(r.overall_dmr()),
            pct(r.migration_efficiency())
        );
    }
    {
        let single = NodeConfig::builder(*eval.grid())
            .capacitors(&[node.capacitors[node.capacitors.len() / 2]])
            .storage(node.storage.clone())
            .build()
            .expect("node");
        let engine1 = Engine::new(&single, &graph, &eval).expect("engine");
        let mut optimal =
            OptimalPlanner::compute(&single, &graph, &eval, &DpConfig::default(), 0.5)
                .expect("optimal");
        let r = engine1.run(&mut optimal).expect("run");
        println!(
            "  single capacitor {:.1} F        DMR {}  migr.eff {}",
            single.capacitors[0].value(),
            pct(r.overall_dmr()),
            pct(r.migration_efficiency())
        );
    }

    // ------------------------------------------------------------------
    println!();
    println!("# Ablation 5 — uniform DVFS slow-down (refs [5,6] direction), intra baseline");
    let period = eval.grid().period_duration();
    let slot = eval.grid().slot_duration();
    let freqs = [1.0, 0.9, 0.8];
    let dvfs_rows = par_sweep(&freqs, |f| {
        scale_graph(&graph, *f, DvfsLaw::default(), period, slot).map(|scaled| {
            let engine_s = Engine::new(&node, &scaled, &eval).expect("engine");
            let r = engine_s
                .run(&mut FixedPlanner::new(Pattern::Intra, 1))
                .expect("run");
            (scaled.total_energy().value(), r.overall_dmr())
        })
    });
    for (f, row) in freqs.iter().zip(dvfs_rows) {
        match row {
            Ok((energy, dmr)) => {
                println!(
                    "  f = {f:<4} energy/period {energy:5.1} J  DMR {}",
                    pct(dmr)
                );
            }
            Err(e) => println!("  f = {f:<4} infeasible: {e}"),
        }
    }
    println!();
    println!("(expected: slower-but-cheaper execution trades slack for energy; WAM's");
    println!(" chain deadlines cap the feasible slow-down quickly)");
}
