//! Table 2 — energy-migration efficiencies with different capacitors.
//!
//! For each capacitor size and migration pattern the paper reports the
//! efficiency predicted by its model, the efficiency measured on the
//! node, and the relative error. Here "Test" is the fine-grained
//! reference simulator (1 s steps, ESR and voltage-dependent
//! capacitance) standing in for the bench measurement.

use helio_common::units::Farads;
use helio_storage::reference::measured_migration_efficiency;
use helio_storage::{migration_efficiency, MigrationSpec, StorageModelParams, SuperCap};

fn main() {
    let params = StorageModelParams::default();
    let specs = [
        ("7J,60min", MigrationSpec::small_short()),
        ("30J,400min", MigrationSpec::large_long()),
    ];
    println!("# Table 2 — energy migration efficiencies (model vs test)");
    println!(
        "{:>10} | {:>10} {:>8} {:>8} | {:>10} {:>8} {:>8}",
        "Capacity", "Model", "Test", "Error", "Model", "Test", "Error"
    );
    println!("{:>10} | {:^28} | {:^28}", "", specs[0].0, specs[1].0);
    let mut errors = Vec::new();
    let mut best: Vec<(f64, f64)> = vec![(0.0, 0.0); specs.len()];
    for c in [1.0, 10.0, 50.0, 100.0] {
        let cap = SuperCap::new(Farads::new(c), &params).expect("valid capacitance");
        print!("{:>9}F |", c);
        for (si, (_, spec)) in specs.iter().enumerate() {
            let model = migration_efficiency(&cap, &params, *spec);
            let test = measured_migration_efficiency(&cap, &params, *spec);
            let err = if test > 0.0 {
                (model - test).abs() / test
            } else {
                0.0
            };
            errors.push(err);
            if model > best[si].1 {
                best[si] = (c, model);
            }
            print!(
                " {:>9.1}% {:>7.1}% {:>7.2}%",
                model * 100.0,
                test * 100.0,
                err * 100.0
            );
            if si == 0 {
                print!(" |");
            }
        }
        println!();
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    println!();
    println!("average model error: {:.2}% (paper: 5.38%)", avg * 100.0);
    for (si, (name, _)) in specs.iter().enumerate() {
        println!(
            "best capacity for {name}: {} F at {:.1}% (paper: 1F/36.8% then 10F/40.7%)",
            best[si].0,
            best[si].1 * 100.0
        );
    }
}
