//! Fig. 7 — solar power of four individual days.
//!
//! Prints the per-period average harvested power (mW) of the four
//! archetype days and their daily energies; the paper's figure shows
//! the same four diurnal profiles with decreasing energy.

use helio_bench::{four_day_trace, paper_grid};
use helio_common::time::PeriodRef;

fn main() {
    let periods = 144;
    let trace = four_day_trace(periods, 7);
    let grid = paper_grid(4, periods);
    println!("# Fig. 7 — solar power of four individual days (mW per period)");
    print!("{:>6}", "hour");
    for d in 0..4 {
        print!(" {:>9}", format!("day{}", d + 1));
    }
    println!();
    // Print every 6th period (hourly resolution) to keep the table
    // readable.
    for j in (0..periods).step_by(6) {
        print!("{:>6.1}", grid.hour_of_day(PeriodRef::new(0, j)));
        for d in 0..4 {
            let e = trace.period_energy(PeriodRef::new(d, j));
            let p_mw = e.value() / grid.period_duration().value() * 1e3;
            print!(" {:>9.2}", p_mw);
        }
        println!();
    }
    println!();
    println!("daily harvested energy:");
    for d in 0..4 {
        println!(
            "  day{} ({}): {:8.1} J",
            d + 1,
            trace.day_archetype(d).expect("synthetic day"),
            trace.day_energy(d).value()
        );
    }
}
