//! # helio-bench
//!
//! The experiment harness regenerating every table and figure of the
//! DAC'15 paper. Each `src/bin/*.rs` binary reproduces one artifact
//! and prints the same rows/series the paper reports:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig5` | regulator efficiency curves |
//! | `fig7` | solar power of four individual days |
//! | `table2` | migration efficiencies, model vs test |
//! | `fig8` | DMR of four schedulers × six benchmarks × four days |
//! | `fig9` | two-month DMR and energy utilisation (WAM) |
//! | `fig10a` | DMR & complexity vs prediction length |
//! | `fig10b` | migration efficiency & DMR vs capacitor count |
//! | `overhead` | Section 6.5 algorithm overhead |
//!
//! Run with `cargo run --release -p helio-bench --bin <name>`. The
//! library half holds the shared experiment plumbing; the Criterion
//! benches in `benches/` time the underlying kernels.

pub mod golden;

use std::time::Instant;

use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_solar::{DayArchetype, SolarPanel, SolarTrace, TraceBuilder, WeatherProcess};
use helio_tasks::TaskGraph;
use heliosched::{
    size_capacitors, BatchEngine, BatchScenario, CoreError, DpConfig, Engine, FixedPlanner,
    NodeConfig, OfflineConfig, OptimalPlanner, Pattern, PeriodPlanner, SimReport,
};
use serde::{Deserialize, Serialize};

/// The paper's experiment grid: 10-minute periods of ten 60 s slots.
/// `periods_per_day` defaults to 144 (a full day); experiments that
/// only need daylight dynamics can pass fewer.
pub fn paper_grid(days: usize, periods_per_day: usize) -> TimeGrid {
    TimeGrid::new(days, periods_per_day, 10, Seconds::new(60.0))
        .expect("paper grid dimensions are valid")
}

/// The four individual test days of Fig. 7/Fig. 8, most to least
/// energetic.
pub fn four_days() -> [DayArchetype; 4] {
    DayArchetype::ALL
}

/// The four-day evaluation trace (Fig. 7's days).
pub fn four_day_trace(periods_per_day: usize, seed: u64) -> SolarTrace {
    TraceBuilder::new(paper_grid(4, periods_per_day), SolarPanel::paper_panel())
        .seed(seed)
        .days(&four_days())
        .build()
}

/// A multi-day weather-process trace (training data and the two-month
/// evaluation of Fig. 9).
pub fn weather_trace(days: usize, periods_per_day: usize, seed: u64) -> SolarTrace {
    TraceBuilder::new(paper_grid(days, periods_per_day), SolarPanel::paper_panel())
        .seed(seed)
        .weather(WeatherProcess::temperate())
        .build()
}

/// Builds a node whose `h` capacitors were sized offline on a training
/// trace (Section 4.1).
///
/// # Errors
///
/// Propagates sizing and configuration failures.
pub fn sized_node(
    graph: &TaskGraph,
    training: &SolarTrace,
    h: usize,
) -> Result<NodeConfig, CoreError> {
    let storage = helio_storage::StorageModelParams::default();
    let pmu = helio_nvp::Pmu::default();
    let sizes = size_capacitors(graph, training, h, &storage, &pmu)?;
    NodeConfig::builder(*training.grid())
        .capacitors(&sizes)
        .storage(storage)
        .build()
        .map(|mut node| {
            node.grid = *training.grid();
            node
        })
}

/// Index of the bank's middle capacitor — the single capacitor the
/// baselines use (they have no sizing stage).
pub fn baseline_capacitor(node: &NodeConfig) -> usize {
    node.capacitors.len() / 2
}

/// The offline-training configuration every experiment binary uses:
/// the given DP resolution and `δ`, with DBN training shrunk under
/// `HELIO_FAST=1`.
pub fn offline_config(dp: DpConfig, delta: f64) -> OfflineConfig {
    let mut offline = OfflineConfig {
        dp,
        delta,
        ..OfflineConfig::default()
    };
    if fast_mode() {
        offline.dbn.bp_epochs = 150;
    }
    offline
}

/// Rebinds a trained/sized node onto an evaluation trace's grid — the
/// train-on-one-trace, evaluate-on-another step of every figure.
pub fn node_for_eval(node_train: &NodeConfig, eval: &SolarTrace) -> NodeConfig {
    NodeConfig {
        grid: *eval.grid(),
        ..node_train.clone()
    }
}

/// DMR comparison row: the four schedulers of Fig. 8.
#[derive(Debug, Clone, Copy)]
pub struct DmrRow {
    /// Inter-task WCMA-based LSA baseline \[3\].
    pub inter: f64,
    /// Intra-task load-matching baseline \[9\].
    pub intra: f64,
    /// The proposed long-term scheduler.
    pub proposed: f64,
    /// The static optimal upper bound.
    pub optimal: f64,
}

/// Runs several planners against one `(node, graph, trace)` as a
/// single lockstep [`BatchEngine`] batch — the sweep primitive the
/// figure binaries build on. Reports come back in planner order and
/// are byte-identical to per-planner [`Engine::run`] calls; DBN-backed
/// planners sharing a network get their inference batched.
///
/// # Errors
///
/// Propagates engine failures.
pub fn run_planner_batch<'a>(
    node: &'a NodeConfig,
    graph: &'a TaskGraph,
    trace: &'a SolarTrace,
    planners: Vec<Box<dyn PeriodPlanner + 'a>>,
) -> Result<Vec<SimReport>, CoreError> {
    let mut engine = BatchEngine::new(node, graph)?;
    for planner in planners {
        engine.push(BatchScenario::new(trace, planner))?;
    }
    // Shard across the worker pool: byte-identical to `run()` at any
    // shard count, so every figure binary gets the cores for free.
    engine.run_parallel()
}

/// Runs the two baselines (the proposed/optimal runs are
/// experiment-specific and supplied by the caller) as one batch; the
/// returned order is `(inter, intra)`.
///
/// # Errors
///
/// Propagates engine failures.
pub fn run_baselines(
    node: &NodeConfig,
    graph: &TaskGraph,
    trace: &SolarTrace,
    baseline_cap: usize,
) -> Result<(SimReport, SimReport), CoreError> {
    let mut reports = run_planner_batch(
        node,
        graph,
        trace,
        vec![
            Box::new(FixedPlanner::new(Pattern::Inter, baseline_cap)),
            Box::new(FixedPlanner::new(Pattern::Intra, baseline_cap)),
        ],
    )?;
    let intra = reports.pop().expect("two runs");
    let inter = reports.pop().expect("two runs");
    Ok((inter, intra))
}

/// Maps `f` over `items` on the worker pool, preserving input order in
/// the output — the sweep primitive of the experiment binaries. Honours
/// `HELIO_THREADS`/`HELIO_SERIAL`.
pub fn par_sweep<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    helio_par::par_map(items, f)
}

/// Resolves the worker count every bench binary records in its JSON
/// output: a `--threads N` argument overrides `HELIO_THREADS` (by
/// setting it, so the whole process — `helio-par` included — agrees),
/// and a conflict between the two is reported on stderr rather than
/// silently ignored. Call once at binary start-up, before any pool
/// work.
pub fn effective_threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut requested: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            requested = iter.next().cloned();
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            requested = Some(v.to_string());
        }
    }
    if let Some(raw) = requested {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => {
                if let Ok(env_raw) = std::env::var("HELIO_THREADS") {
                    if env_raw.trim() != raw.trim() {
                        eprintln!("warning: --threads {raw} overrides HELIO_THREADS={env_raw}");
                    }
                }
                std::env::set_var("HELIO_THREADS", n.to_string());
            }
            _ => eprintln!("warning: ignoring invalid --threads value `{raw}`"),
        }
    }
    helio_par::configured_threads()
}

/// Runs `f` and returns its result plus the wall-clock milliseconds it
/// took.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Writes a machine-readable report under `results/` the way every
/// bench binary does: pretty JSON, trailing newline, a `wrote <path>`
/// line on stdout.
pub fn write_json<T: Serialize>(path: &str, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("report serialises");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(path, format!("{json}\n")).expect("write json");
    println!("wrote {path}");
}

/// One timed stage of the offline pipeline (see `bench_offline`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchStage {
    /// Stage label, e.g. `"sizing"`.
    pub name: String,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
}

/// Machine-readable result of the `bench_offline` binary
/// (`results/BENCH_offline.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchOfflineReport {
    /// Worker threads the parallel stages used
    /// (`HELIO_THREADS`/`HELIO_SERIAL` aware).
    pub threads: usize,
    /// Wall-clock per pipeline stage, in execution order.
    pub stages: Vec<BenchStage>,
    /// Subset-simulation cache hits during the optimal plan.
    pub cache_hits: u64,
    /// Subset-simulation cache misses during the optimal plan.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` of the plan's memo cache.
    pub cache_hit_rate: f64,
    /// Serial reference DP wall-clock over cached+parallel DP
    /// wall-clock (same inputs, bitwise-identical outputs).
    pub dp_speedup_vs_serial: f64,
    /// Whether the cached+parallel DP reproduced the serial reference
    /// result exactly (hard failure if ever false).
    pub dp_matches_serial: bool,
}

/// Machine-readable result of the `bench_train` binary
/// (`results/BENCH_train.json`; the pre-refactor run is committed as
/// `results/BENCH_train_baseline.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchTrainReport {
    /// Worker threads configured (training itself is serial; this
    /// records the environment for comparability).
    pub threads: usize,
    /// Training samples in the set.
    pub samples: usize,
    /// Input features per sample.
    pub in_dim: usize,
    /// Target features per sample.
    pub out_dim: usize,
    /// Back-propagation epochs timed.
    pub bp_epochs: usize,
    /// Wall-clock per training stage (`scaler`, `cd1`, `backprop`),
    /// summed over all repetitions.
    pub stages: Vec<BenchStage>,
    /// End-to-end `Dbn::train` wall-clock over all repetitions,
    /// milliseconds.
    pub dbn_train_total_ms: f64,
    /// Repetitions each measurement was summed over.
    pub reps: usize,
    /// `dbn_train_total_ms` of the committed pre-refactor baseline,
    /// when present.
    pub baseline_total_ms: Option<f64>,
    /// `baseline_total_ms / dbn_train_total_ms`, when a baseline is
    /// present.
    pub speedup_vs_baseline: Option<f64>,
}

/// Slot-loop throughput of one scheduling pattern (see `bench_online`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotLoopStat {
    /// Fine-grained pattern (`asap`/`inter`/`intra`).
    pub pattern: String,
    /// Total slots simulated across all repetitions.
    pub slots: u64,
    /// Wall-clock over all repetitions, milliseconds.
    pub wall_ms: f64,
    /// `slots / wall` in slots per second.
    pub slots_per_sec: f64,
}

/// Per-period planner decision cost (see `bench_online`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionStat {
    /// Planner label (`asap`/`inter`/`intra`/`proposed-dbn`/`optimal`).
    pub planner: String,
    /// Total `plan()` calls timed.
    pub decisions: u64,
    /// Wall-clock over all calls, milliseconds.
    pub wall_ms: f64,
    /// Mean microseconds per decision.
    pub us_per_decision: f64,
}

/// Machine-readable result of the `bench_online` binary
/// (`results/BENCH_online.json`; the pre-refactor run is committed as
/// `results/BENCH_online_baseline.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchOnlineReport {
    /// Worker threads configured (the slot loop itself is serial; this
    /// records the environment for comparability).
    pub threads: usize,
    /// Slot-loop throughput per fine-grained pattern (ECG benchmark,
    /// four archetype days).
    pub slot_loop: Vec<SlotLoopStat>,
    /// Aggregate throughput: total slots over total wall-clock.
    pub slots_per_sec_overall: f64,
    /// Per-period decision cost per planner.
    pub planner_decision: Vec<DecisionStat>,
    /// `slots_per_sec_overall` of the committed baseline, when present.
    pub baseline_slots_per_sec: Option<f64>,
    /// `slots_per_sec_overall / baseline`, when a baseline is present.
    pub speedup_vs_baseline: Option<f64>,
}

/// One batch size of the `bench_batch` throughput sweep (see
/// `bench_batch`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSweepPoint {
    /// Scenarios advanced in lockstep per batch.
    pub batch: usize,
    /// Scenario-periods simulated per mode across all repetitions.
    pub periods: u64,
    /// Wall-clock of the sequential mode (one `Engine::run` per
    /// scenario), milliseconds.
    pub sequential_wall_ms: f64,
    /// Wall-clock of the batched mode (one `BatchEngine::run` over all
    /// scenarios), milliseconds.
    pub batched_wall_ms: f64,
    /// Sequential throughput in scenario-periods per second.
    pub sequential_periods_per_sec: f64,
    /// Batched throughput in scenario-periods per second.
    pub batched_periods_per_sec: f64,
    /// `sequential_wall_ms / batched_wall_ms`.
    pub speedup: f64,
}

/// Machine-readable result of the `bench_batch` binary
/// (`results/BENCH_batch.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBatchReport {
    /// Worker threads configured (both modes here are single-threaded;
    /// this records the environment for comparability).
    pub threads: usize,
    /// Grid description (days × periods × slots).
    pub grid: String,
    /// Planner backend the sweep batches (`proposed-dbn`).
    pub backend: String,
    /// Whether every batched run was byte-identical to its sequential
    /// counterpart (hard failure if ever false).
    pub identical: bool,
    /// One point per batch size, ascending.
    pub points: Vec<BatchSweepPoint>,
}

/// One point of the `bench_faults` robustness sweep: a (planner
/// backend × blackout duration × aging severity) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Planner backend (`inter`, `dbn`, `mpc`).
    pub backend: String,
    /// Midday blackout length in periods (0 = no blackout).
    pub blackout_periods: usize,
    /// Aging severity label (`none`, `moderate`, `severe`).
    pub aging: String,
    /// Long-term DMR of the faulted run.
    pub dmr: f64,
    /// Long-term DMR of the same backend's clean run.
    pub clean_dmr: f64,
    /// `dmr - clean_dmr` in DMR points (robustness cost of the faults).
    pub dmr_degradation: f64,
    /// Periods the (resilient) planner served from its fallback.
    pub fallbacks: usize,
    /// Slots whose harvest a solar fault modified.
    pub faulted_slots: usize,
    /// Sum of all degraded-mode counters.
    pub degraded_total: usize,
    /// Fault-log length of the run.
    pub fault_events: usize,
    /// Periods after the blackout window until the per-period miss
    /// count first returned to the clean run's level (`null` when no
    /// blackout was injected or the run never recovered within the
    /// horizon).
    pub recovery_periods: Option<usize>,
}

/// Machine-readable result of the `bench_faults` binary
/// (`results/ROBUSTNESS.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Worker threads the sharded batch runs used
    /// (`--threads`/`HELIO_THREADS`/`HELIO_SERIAL` aware).
    pub threads: usize,
    /// Grid description (days × periods × slots).
    pub grid: String,
    /// Flat period the injected blackout starts at.
    pub blackout_start: usize,
    /// DBN-outage window injected into every faulted cell, as
    /// `[start, len]` flat periods.
    pub dbn_outage: [usize; 2],
    /// Wall-clock of the whole sweep (clean + faulted batches),
    /// milliseconds.
    pub wall_ms: f64,
    /// The sweep, ordered backend-major.
    pub sweep: Vec<RobustnessPoint>,
}

/// One (thread count × batch width) cell of the `bench_fleet` sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepPoint {
    /// Worker threads the sharded run was pinned to.
    pub threads: usize,
    /// Scenarios advanced in lockstep per run.
    pub batch: usize,
    /// Scenario-periods simulated across all repetitions.
    pub periods: u64,
    /// Wall-clock across all repetitions, milliseconds.
    pub wall_ms: f64,
    /// Throughput in scenario-periods per second.
    pub periods_per_sec: f64,
    /// Throughput in completed scenarios per second.
    pub scenarios_per_sec: f64,
    /// `scenarios_per_sec` over the sequential B=16 baseline.
    pub speedup_vs_sequential: f64,
}

/// Machine-readable result of the `bench_fleet` binary
/// (`results/BENCH_fleet.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchFleetReport {
    /// CPU cores the host exposed (`available_parallelism`).
    pub host_cores: usize,
    /// Grid description (days × periods × slots).
    pub grid: String,
    /// Planner backend the sweep shards (`proposed-dbn`).
    pub backend: String,
    /// Whether every sharded run was byte-identical to the sequential
    /// engine (hard failure if ever false).
    pub identical: bool,
    /// Sequential baseline: one `Engine::run` per scenario over the
    /// B=16 workload, scenarios per second.
    pub sequential_scenarios_per_sec: f64,
    /// Sequential baseline wall-clock, milliseconds.
    pub sequential_wall_ms: f64,
    /// Best `scenarios_per_sec / sequential_scenarios_per_sec` over the
    /// sweep — the headline number.
    pub best_speedup: f64,
    /// One point per (threads × batch) cell, threads-major.
    pub points: Vec<FleetSweepPoint>,
}

/// One check of the `bench_chaos` service-level chaos sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCheck {
    /// Check label, e.g. `"kill-resume@12"`.
    pub name: String,
    /// Whether the service behaved as contracted.
    pub passed: bool,
    /// What was observed (line counts, divergence, error text).
    pub detail: String,
    /// Wall-clock of the check, milliseconds.
    pub wall_ms: f64,
}

/// Machine-readable result of the `bench_chaos` binary
/// (`results/ROBUSTNESS_fleet.json`): the fleet *service* under chaos
/// — kill/resume, corrupted protocol lines, worker panics, deadlines
/// and a stalling client — complementing `ROBUSTNESS.json`, which
/// perturbs the simulated node instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetChaosReport {
    /// Grid description (days × periods × slots).
    pub grid: String,
    /// Request lines in the chaos session.
    pub requests: usize,
    /// Flat periods the kill/resume checks killed the service at.
    pub kill_points: Vec<usize>,
    /// Wall-clock of the slowest resumed session (recovery latency),
    /// milliseconds.
    pub recovery_ms: f64,
    /// Response lines lost across every kill/resume check (must be 0).
    pub lost_lines: usize,
    /// Response lines duplicated across every kill/resume check (must
    /// be 0).
    pub duplicated_lines: usize,
    /// Every individual check.
    pub checks: Vec<ChaosCheck>,
    /// Whether every check passed (the binary exits nonzero otherwise).
    pub all_passed: bool,
}

/// Convenience: run the static optimal planner.
///
/// # Errors
///
/// Propagates planning/engine failures.
pub fn run_optimal(
    node: &NodeConfig,
    graph: &TaskGraph,
    trace: &SolarTrace,
    dp: &heliosched::DpConfig,
    delta: f64,
) -> Result<SimReport, CoreError> {
    let mut planner = OptimalPlanner::compute(node, graph, trace, dp, delta)?;
    Engine::new(node, graph, trace)?.run(&mut planner)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Reads an environment flag that shrinks experiments for smoke runs
/// (`HELIO_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("HELIO_FAST").is_ok_and(|v| v == "1")
}

/// Standard capacitance ladder used when an experiment needs explicit
/// sizes instead of the sizing pipeline.
pub fn standard_sizes() -> Vec<Farads> {
    [1.0, 10.0, 50.0, 100.0].map(Farads::new).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_shape() {
        let g = paper_grid(4, 144);
        assert_eq!(g.total_periods(), 576);
        assert!((g.period_duration().minutes() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn four_day_trace_is_ordered() {
        let t = four_day_trace(48, 1);
        let e: Vec<f64> = (0..4).map(|d| t.day_energy(d).value()).collect();
        assert!(e.windows(2).all(|w| w[0] > w[1]), "{e:?}");
    }

    #[test]
    fn sized_node_has_h_caps() {
        let g = helio_tasks::benchmarks::ecg();
        let t = weather_trace(3, 48, 2);
        let node = sized_node(&g, &t, 3).unwrap();
        assert_eq!(node.capacitor_count(), 3);
        assert!(baseline_capacitor(&node) == 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.278), " 27.8%");
    }
}
