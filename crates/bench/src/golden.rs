//! The online golden suite: a fixed set of `Engine::run` configurations
//! whose `SimReport`s are committed to `results/golden_online/` and
//! re-checked byte for byte by `tests/golden_online.rs` (and CI).
//!
//! The suite pins the engine's observable behaviour across refactors:
//! all six benchmarks × the three fixed patterns, plus the
//! planner-driven paths (optimal LUT, MPC, DBN) on ECG — every case on
//! the four archetype days under fixed seeds. The vendored serde
//! serialises `f64` via shortest-round-trip formatting, so identical
//! reports produce identical bytes.

use helio_ann::{CompiledDbn, CompiledTier, Dbn, DbnConfig, DistillConfig, DistilledPolicy};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, SolarTrace, TraceBuilder};
use helio_tasks::benchmarks;
use heliosched::{
    BatchCheckpoint, BatchEngine, BatchScenario, BatchScratch, DpConfig, Engine, FixedPlanner,
    NodeConfig, OptimalPlanner, Pattern, ProposedPlanner, SimReport, SwitchRule,
};

/// Seed of the golden trace (matches the online planner unit tests).
pub const GOLDEN_SEED: u64 = 11;

/// Pattern-selection threshold `δ` used by the planner-driven cases.
pub const GOLDEN_DELTA: f64 = 0.5;

/// The golden grid: four days of 24 × (10 × 60 s) periods.
pub fn golden_grid() -> TimeGrid {
    TimeGrid::new(4, 24, 10, Seconds::new(60.0)).expect("golden grid dimensions are valid")
}

/// The four archetype days (clear → storm) under the golden seed.
pub fn golden_trace() -> SolarTrace {
    TraceBuilder::new(golden_grid(), SolarPanel::paper_panel())
        .seed(GOLDEN_SEED)
        .days(&DayArchetype::ALL)
        .build()
}

/// A two-capacitor node (small + large) so capacitor switching is
/// exercised by the planner-driven cases.
pub fn golden_node() -> NodeConfig {
    NodeConfig::builder(golden_grid())
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .expect("golden node config is valid")
}

/// DP resolution of the golden optimal/MPC cases (small enough to keep
/// the golden test quick in debug builds).
pub fn golden_dp() -> DpConfig {
    DpConfig {
        voltage_buckets: 6,
        keep_per_level: 1,
    }
}

/// Trains the golden DBN from the optimal planner's recorded samples.
pub fn golden_dbn(optimal: &OptimalPlanner) -> Dbn {
    let mut cfg = DbnConfig::small(GOLDEN_SEED);
    cfg.bp_epochs = 150; // golden suite runs in debug CI; keep it quick
    Dbn::train_set(optimal.samples(), &cfg).expect("golden DBN trains")
}

/// Runs the whole golden suite and returns `(case name, report)` pairs
/// in a fixed order. Case names double as file stems under
/// `results/golden_online/`.
pub fn golden_reports() -> Vec<(String, SimReport)> {
    golden_reports_with(None)
}

/// [`golden_reports`] through [`Engine::run_with_faults`]: with `None`
/// or an empty harness the reports are byte-identical to the clean
/// suite (the robustness gate CI relies on).
pub fn golden_reports_with(
    harness: Option<&helio_faults::FaultHarness>,
) -> Vec<(String, SimReport)> {
    let node = golden_node();
    let trace = golden_trace();
    let mut out = Vec::new();

    // Six benchmarks × three fixed patterns. ASAP gets the small
    // capacitor (it hoards no energy), the planned patterns the large.
    for graph in benchmarks::all_six() {
        let engine = Engine::new(&node, &graph, &trace).expect("golden engine");
        for (pattern, cap) in [
            (Pattern::Asap, 0usize),
            (Pattern::Inter, 1),
            (Pattern::Intra, 1),
        ] {
            let report = engine
                .run_with_faults(&mut FixedPlanner::new(pattern, cap), harness)
                .expect("golden fixed run");
            out.push((format!("{}_{}", graph.name(), pattern), report));
        }
    }

    // Planner-driven paths on ECG: optimal LUT replay, MPC on a perfect
    // oracle, and the DBN trained from the optimal samples.
    let graph = benchmarks::ecg();
    let engine = Engine::new(&node, &graph, &trace).expect("golden engine");
    let dp = golden_dp();
    let mut optimal =
        OptimalPlanner::compute(&node, &graph, &trace, &dp, GOLDEN_DELTA).expect("golden optimal");
    let dbn = golden_dbn(&optimal);
    out.push((
        "ecg_optimal".into(),
        engine
            .run_with_faults(&mut optimal, harness)
            .expect("golden optimal run"),
    ));
    let mut mpc = ProposedPlanner::mpc(
        Box::new(NoisyOracle::perfect()),
        24,
        dp,
        GOLDEN_DELTA,
        SwitchRule::default(),
    );
    out.push((
        "ecg_mpc".into(),
        engine
            .run_with_faults(&mut mpc, harness)
            .expect("golden mpc run"),
    ));
    let mut dbn_planner = ProposedPlanner::from_dbn(dbn, GOLDEN_DELTA, SwitchRule::default());
    out.push((
        "ecg_dbn".into(),
        engine
            .run_with_faults(&mut dbn_planner, harness)
            .expect("golden dbn run"),
    ));
    out
}

/// Per-scenario DMR epsilon of the compiled-planner regression gate:
/// every case replayed through [`golden_compiled_reports`] must land
/// within this of the f64 reference suite's DMR. The compiled path is
/// tolerance-gated, not bit-identical — see `helio_ann::compiled` for
/// the contract; `tests/golden_compiled.rs` enforces this bound on all
/// 21 scenarios for both tiers.
pub const GOLDEN_COMPILED_DMR_EPS: f64 = 0.01;

/// The 21 golden cases with the DBN case running the compiled planner
/// at `tier` instead of the f64 reference: 20 cases are untouched by
/// compilation (fixed patterns, optimal, MPC) and anchor the harness;
/// `ecg_dbn` becomes `compiled-dbn`/`compiled-dbn-i8`. The DMR-bound
/// harness compares these against [`golden_reports`] per scenario.
pub fn golden_compiled_reports(tier: CompiledTier) -> Vec<(String, SimReport)> {
    let node = golden_node();
    let trace = golden_trace();
    let mut out = Vec::new();

    for graph in benchmarks::all_six() {
        let engine = Engine::new(&node, &graph, &trace).expect("golden engine");
        for (pattern, cap) in [
            (Pattern::Asap, 0usize),
            (Pattern::Inter, 1),
            (Pattern::Intra, 1),
        ] {
            let report = engine
                .run(&mut FixedPlanner::new(pattern, cap))
                .expect("golden fixed run");
            out.push((format!("{}_{}", graph.name(), pattern), report));
        }
    }

    let graph = benchmarks::ecg();
    let engine = Engine::new(&node, &graph, &trace).expect("golden engine");
    let dp = golden_dp();
    let mut optimal =
        OptimalPlanner::compute(&node, &graph, &trace, &dp, GOLDEN_DELTA).expect("golden optimal");
    let dbn = golden_dbn(&optimal);
    out.push((
        "ecg_optimal".into(),
        engine.run(&mut optimal).expect("golden optimal run"),
    ));
    let mut mpc = ProposedPlanner::mpc(
        Box::new(NoisyOracle::perfect()),
        24,
        dp,
        GOLDEN_DELTA,
        SwitchRule::default(),
    );
    out.push((
        "ecg_mpc".into(),
        engine.run(&mut mpc).expect("golden mpc run"),
    ));
    let compiled = CompiledDbn::compile(&dbn, tier).expect("golden DBN compiles");
    let mut compiled_planner = ProposedPlanner::from_compiled_dbn(
        std::sync::Arc::new(compiled),
        GOLDEN_DELTA,
        SwitchRule::default(),
    );
    out.push((
        "ecg_dbn".into(),
        engine
            .run(&mut compiled_planner)
            .expect("golden compiled run"),
    ));
    out
}

/// Per-scenario DMR epsilon of the distilled-artifact regression gate:
/// every case replayed through [`golden_distilled_reports`] must land
/// within this of the f64 reference suite's DMR. The artifact is
/// agreement-gated against its teacher, not bit-identical —
/// `tests/golden_distilled.rs` enforces this bound on all 21
/// scenarios.
pub const GOLDEN_DISTILLED_DMR_EPS: f64 = 0.01;

/// Distillation hyper-parameters of the golden artifact.
pub fn golden_distill_config() -> DistillConfig {
    let mut cfg = DistillConfig::small(GOLDEN_SEED);
    // The recorded trajectory is ~100 vectors against 32k box
    // samples: weight it so the states the scheduler actually visits
    // carry comparable mass in the split selection and leaf fits.
    cfg.extra_weight = 128;
    // 3+3 rather than the default 5+5: the golden decision surface is
    // captured just as well (a depth sweep holds ~0.97 holdout
    // agreement all the way down to 3+3 and only collapses below
    // that), and the 64-leaf model table is ~33 KB — cache-resident on
    // the hot path — while the walk drops to six dependent-load
    // levels.
    cfg.depth_const = 3;
    cfg.depth_vary = 3;
    cfg
}

/// Delegates every decision to a wrapped planner while recording the
/// exact raw feature vector the DBN consumes each period (the same
/// construction as the online planner's `gather_dbn_input`) — the
/// trajectory distribution the distillation pass must cover.
struct RecordingPlanner<'a> {
    inner: ProposedPlanner,
    samples: &'a mut Vec<Vec<f64>>,
}

impl heliosched::PeriodPlanner for RecordingPlanner<'_> {
    fn name(&self) -> &'static str {
        "recording-dbn"
    }

    fn plan(&mut self, obs: &heliosched::PlannerObservation<'_>) -> heliosched::PlanDecision {
        let grid = obs.grid;
        let spp = grid.slots_per_period();
        let flat = grid.period_index(obs.period);
        let mut input = vec![0.0; spp + obs.bank.len() + 1];
        if flat > 0 {
            let prev = grid.period_at(flat - 1);
            for (d, &w) in input[..spp]
                .iter_mut()
                .zip(obs.trace.period_powers_raw(prev))
            {
                *d = w * 1e3;
            }
        }
        let rest = &mut input[spp..];
        let (volts, dmr) = rest.split_at_mut(obs.bank.len());
        for (d, v) in volts.iter_mut().zip(obs.bank.voltages_iter()) {
            *d = v;
        }
        dmr[0] = obs.accumulated_dmr;
        self.samples.push(input);
        self.inner.plan(obs)
    }
}

/// Trajectory samples for the golden distillation pass: replays the
/// golden `ecg_dbn` scenario with the f64 reference planner and
/// records the feature vector it feeds the network every period.
pub fn golden_distill_samples(dbn: &Dbn) -> Vec<Vec<f64>> {
    let node = golden_node();
    let trace = golden_trace();
    let graph = benchmarks::ecg();
    let engine = Engine::new(&node, &graph, &trace).expect("golden engine");
    let mut samples = Vec::new();
    let mut recorder = RecordingPlanner {
        inner: ProposedPlanner::from_dbn(dbn.clone(), GOLDEN_DELTA, SwitchRule::default()),
        samples: &mut samples,
    };
    engine.run(&mut recorder).expect("golden recording run");
    samples
}

/// Distils the golden DBN into the branch-free decision artifact: the
/// run-constant feature prefix (the previous period's slot powers) is
/// the constant tree section, and the golden trajectory's recorded
/// feature vectors are weighted into the fit.
pub fn golden_distilled_policy(dbn: &Dbn) -> DistilledPolicy {
    let spp = golden_grid().slots_per_period().min(dbn.input_dim());
    let samples = golden_distill_samples(dbn);
    DistilledPolicy::distill(dbn, spp, &samples, &golden_distill_config())
        .expect("golden DBN distils")
}

/// The 21 golden cases with the DBN case running the distilled
/// artifact (compiled `f32` as its fallback tier): 20 cases are
/// untouched by distillation and anchor the harness; `ecg_dbn` becomes
/// `distilled`. The DMR-bound harness compares these against
/// [`golden_reports`] per scenario.
pub fn golden_distilled_reports() -> Vec<(String, SimReport)> {
    let node = golden_node();
    let trace = golden_trace();
    let mut out = Vec::new();

    for graph in benchmarks::all_six() {
        let engine = Engine::new(&node, &graph, &trace).expect("golden engine");
        for (pattern, cap) in [
            (Pattern::Asap, 0usize),
            (Pattern::Inter, 1),
            (Pattern::Intra, 1),
        ] {
            let report = engine
                .run(&mut FixedPlanner::new(pattern, cap))
                .expect("golden fixed run");
            out.push((format!("{}_{}", graph.name(), pattern), report));
        }
    }

    let graph = benchmarks::ecg();
    let engine = Engine::new(&node, &graph, &trace).expect("golden engine");
    let dp = golden_dp();
    let mut optimal =
        OptimalPlanner::compute(&node, &graph, &trace, &dp, GOLDEN_DELTA).expect("golden optimal");
    let dbn = golden_dbn(&optimal);
    out.push((
        "ecg_optimal".into(),
        engine.run(&mut optimal).expect("golden optimal run"),
    ));
    let mut mpc = ProposedPlanner::mpc(
        Box::new(NoisyOracle::perfect()),
        24,
        dp,
        GOLDEN_DELTA,
        SwitchRule::default(),
    );
    out.push((
        "ecg_mpc".into(),
        engine.run(&mut mpc).expect("golden mpc run"),
    ));
    let policy = golden_distilled_policy(&dbn);
    let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("golden DBN compiles");
    let mut distilled_planner = ProposedPlanner::from_distilled(
        std::sync::Arc::new(policy),
        std::sync::Arc::new(compiled),
        GOLDEN_DELTA,
        SwitchRule::default(),
    );
    out.push((
        "ecg_dbn".into(),
        engine
            .run(&mut distilled_planner)
            .expect("golden distilled run"),
    ));
    out
}

/// The same 21 cases as [`golden_reports`], in the same order, built
/// through [`BatchEngine`] instead of per-scenario [`Engine`] runs:
/// one lockstep batch per benchmark for the three fixed patterns, one
/// batch for the three planner-driven ECG cases. The batched engine's
/// byte-identity contract means these reports must render to exactly
/// the committed golden files (CI-gated by `tests/golden_online.rs`).
pub fn golden_batch_reports() -> Vec<(String, SimReport)> {
    golden_batch_reports_via(&|engine| engine.run().expect("golden batch run"))
}

/// The same 21 cases as [`golden_batch_reports`] through
/// [`BatchEngine::run_sharded`] with `shards` workers: the sharded
/// engine's byte-identity contract means these reports must also
/// render to exactly the committed golden files, for every shard
/// count (CI-gated by `tests/golden_online.rs`).
pub fn golden_sharded_reports(shards: usize) -> Vec<(String, SimReport)> {
    golden_batch_reports_via(&move |engine| engine.run_sharded(shards).expect("golden sharded run"))
}

/// The same 21 cases as [`golden_batch_reports`], each batch killed at
/// flat period `kill`, its checkpoint JSON-round-tripped (exactly what
/// the fleet service's on-disk resume does) and finished with `shards`
/// scratches. The checkpoint contract — interrupt anywhere, resume
/// byte-identically — means these reports must render to exactly the
/// committed golden files (CI-gated by `tests/golden_online.rs`).
pub fn golden_checkpoint_reports(kill: usize, shards: usize) -> Vec<(String, SimReport)> {
    golden_batch_reports_via(&move |mut engine| {
        let ckpt = engine.run_until(kill).expect("golden checkpoint");
        let json = serde_json::to_string(&ckpt).expect("checkpoint serialises");
        let ckpt: BatchCheckpoint = serde_json::from_str(&json).expect("checkpoint round-trips");
        let mut scratches: Vec<BatchScratch> = Vec::new();
        scratches.resize_with(shards, BatchScratch::default);
        engine
            .run_from_checkpoint_sharded_with(&ckpt, &mut scratches)
            .expect("golden checkpoint resume")
    })
}

fn golden_batch_reports_via(
    run: &dyn for<'a> Fn(BatchEngine<'a>) -> Vec<SimReport>,
) -> Vec<(String, SimReport)> {
    let node = golden_node();
    let trace = golden_trace();
    let patterns = [
        (Pattern::Asap, 0usize),
        (Pattern::Inter, 1),
        (Pattern::Intra, 1),
    ];
    let mut out = Vec::new();

    for graph in benchmarks::all_six() {
        let mut engine = BatchEngine::new(&node, &graph).expect("golden batch engine");
        for (pattern, cap) in patterns {
            engine
                .push(BatchScenario::new(
                    &trace,
                    Box::new(FixedPlanner::new(pattern, cap)),
                ))
                .expect("golden batch scenario");
        }
        let reports = run(engine);
        for ((pattern, _), report) in patterns.iter().zip(reports) {
            out.push((format!("{}_{}", graph.name(), pattern), report));
        }
    }

    let graph = benchmarks::ecg();
    let dp = golden_dp();
    let optimal =
        OptimalPlanner::compute(&node, &graph, &trace, &dp, GOLDEN_DELTA).expect("golden optimal");
    let dbn = golden_dbn(&optimal);
    let mut engine = BatchEngine::new(&node, &graph).expect("golden batch engine");
    engine
        .push(BatchScenario::new(&trace, Box::new(optimal)))
        .expect("golden batch scenario");
    engine
        .push(BatchScenario::new(
            &trace,
            Box::new(ProposedPlanner::mpc(
                Box::new(NoisyOracle::perfect()),
                24,
                dp,
                GOLDEN_DELTA,
                SwitchRule::default(),
            )),
        ))
        .expect("golden batch scenario");
    engine
        .push(BatchScenario::new(
            &trace,
            Box::new(ProposedPlanner::from_dbn(
                dbn,
                GOLDEN_DELTA,
                SwitchRule::default(),
            )),
        ))
        .expect("golden batch scenario");
    let mut reports = run(engine).into_iter();
    for name in ["ecg_optimal", "ecg_mpc", "ecg_dbn"] {
        out.push((name.into(), reports.next().expect("three reports")));
    }
    out
}

/// Canonical byte rendering of a golden report — the generator writes
/// these bytes, the test compares against them.
pub fn render(report: &SimReport) -> String {
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    format!("{json}\n")
}

/// Canonical byte rendering of a trained DBN's weights — the
/// `golden_train` generator writes these bytes, `tests/golden_train.rs`
/// compares against them. Shortest-round-trip `f64` formatting makes
/// byte equality equivalent to bitwise weight equality.
pub fn render_dbn(dbn: &Dbn) -> String {
    let json = serde_json::to_string_pretty(dbn).expect("dbn serialises");
    format!("{json}\n")
}

/// Repo-relative directory the golden files live in.
pub const GOLDEN_DIR: &str = "results/golden_online";

/// Repo-relative directory the training golden fixture lives in.
pub const GOLDEN_TRAIN_DIR: &str = "results/golden_train";
