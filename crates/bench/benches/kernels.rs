//! Criterion benchmarks of the computational kernels behind every
//! table and figure. The full experiment *results* come from the
//! `src/bin/*` binaries; these benches time the building blocks so
//! regressions in the simulator/optimiser show up in CI.
//!
//! Group names map to paper artifacts:
//! * `fig5_regulator` — efficiency-curve evaluation
//! * `fig7_solar` — synthetic trace generation
//! * `table2_migration` — migration experiment (model + reference)
//! * `fig8_engine` — one simulated day per scheduler pattern
//! * `slot_loop` — the online hot path over a four-day run (the loop
//!   `bench_online` reports in results/BENCH_online.json)
//! * `batch_loop` — B = 16 DBN scenarios through `BatchEngine` vs a
//!   sequential `Engine::run` loop (the comparison `bench_batch`
//!   reports in results/BENCH_batch.json)
//! * `fig8_fig9_dp` — the long-term DP over one day
//! * `fig10a_mpc` — an MPC replan at several horizons
//! * `fig10b_sizing` — per-day capacitor sizing
//! * `sec65_dbn` — DBN training and inference (the on-node coarse step)

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use helio_bench::{paper_grid, weather_trace};
use helio_common::units::{Farads, Joules, Seconds, Volts};
use helio_nvp::Pmu;
use helio_solar::{NoisyOracle, SolarPanel, SolarPredictor, TraceBuilder, WeatherProcess};
use helio_storage::reference::measured_migration_efficiency;
use helio_storage::{
    migration_efficiency, optimal_capacitance, MigrationSpec, RegulatorCurve, StorageModelParams,
    SuperCap,
};
use helio_tasks::benchmarks;
use heliosched::{
    dmr_level_subsets, optimize_horizon, DpConfig, Engine, FixedPlanner, NodeConfig, Pattern,
};

fn fig5_regulator(c: &mut Criterion) {
    let chr = RegulatorCurve::default_charge();
    c.bench_function("fig5_regulator/efficiency_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut v = 0.5;
            while v <= 5.0 {
                acc += chr.efficiency(Volts::new(black_box(v)));
                v += 0.01;
            }
            acc
        })
    });
}

fn fig7_solar(c: &mut Criterion) {
    let grid = paper_grid(4, 144);
    c.bench_function("fig7_solar/four_day_trace", |b| {
        b.iter(|| {
            TraceBuilder::new(grid, SolarPanel::paper_panel())
                .seed(black_box(7))
                .days(&helio_solar::DayArchetype::ALL)
                .build()
        })
    });
    c.bench_function("fig7_solar/month_weather_trace", |b| {
        b.iter(|| {
            TraceBuilder::new(paper_grid(30, 144), SolarPanel::paper_panel())
                .seed(black_box(7))
                .weather(WeatherProcess::temperate())
                .build()
        })
    });
}

fn table2_migration(c: &mut Criterion) {
    let params = StorageModelParams::default();
    let cap = SuperCap::new(Farads::new(10.0), &params).expect("valid");
    c.bench_function("table2_migration/model_30j_400min", |b| {
        b.iter(|| migration_efficiency(&cap, &params, black_box(MigrationSpec::large_long())))
    });
    c.bench_function("table2_migration/reference_7j_60min", |b| {
        b.iter(|| {
            measured_migration_efficiency(&cap, &params, black_box(MigrationSpec::small_short()))
        })
    });
}

fn fig8_engine(c: &mut Criterion) {
    let grid = paper_grid(1, 144);
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(1)
        .days(&[helio_solar::DayArchetype::BrokenClouds])
        .build();
    let graph = benchmarks::wam();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(10.0)])
        .build()
        .expect("node");
    let engine = Engine::new(&node, &graph, &trace).expect("engine");
    let mut group = c.benchmark_group("fig8_engine");
    group.sample_size(20);
    for pattern in [Pattern::Asap, Pattern::Inter, Pattern::Intra] {
        group.bench_with_input(
            BenchmarkId::new("one_day_wam", format!("{pattern}")),
            &pattern,
            |b, &p| b.iter(|| engine.run(&mut FixedPlanner::new(p, 0)).expect("run")),
        );
    }
    group.finish();
}

fn slot_loop(c: &mut Criterion) {
    // The online hot path under Criterion's sampling: a four-day run
    // (4 × 24 × 10 = 960 slots) per scheduler pattern on the ecg graph.
    // This is the same loop `bench_online` times for
    // results/BENCH_online.json; here it guards against slot-path
    // regressions in CI without the JSON machinery.
    let grid = paper_grid(4, 24);
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(11)
        .days(&[
            helio_solar::DayArchetype::Clear,
            helio_solar::DayArchetype::BrokenClouds,
            helio_solar::DayArchetype::Overcast,
            helio_solar::DayArchetype::Clear,
        ])
        .build();
    let graph = benchmarks::ecg();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(10.0)])
        .build()
        .expect("node");
    let engine = Engine::new(&node, &graph, &trace).expect("engine");
    let mut group = c.benchmark_group("slot_loop");
    group.sample_size(30);
    for pattern in [Pattern::Asap, Pattern::Inter, Pattern::Intra] {
        group.bench_with_input(
            BenchmarkId::new("four_day_ecg_960_slots", format!("{pattern}")),
            &pattern,
            |b, &p| b.iter(|| engine.run(&mut FixedPlanner::new(p, 0)).expect("run")),
        );
    }
    group.finish();
}

fn batch_loop(c: &mut Criterion) {
    // The batched engine against the sequential loop it replaces: 16
    // DBN-planned scenarios (distinct weather-seeded traces, shared
    // task set and bank shape) on a decision-dominated grid (two 300 s
    // slots per period), the same comparison `bench_batch` reports in
    // results/BENCH_batch.json. Byte-identity of the two modes is
    // CI-gated by `tests/golden_online.rs`; this group guards the
    // throughput edge.
    const B: usize = 16;
    let grid = helio_common::time::TimeGrid::new(1, 48, 2, Seconds::new(300.0)).expect("grid");
    let graph = benchmarks::ecg();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .expect("node");
    let in_dim = grid.slots_per_period() + node.capacitors.len() + 1;
    let out_dim = 2 + graph.len();
    let inputs: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..in_dim)
                .map(|k| ((i * 7 + k * 13) % 50) as f64 / 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..64)
        .map(|i| (0..out_dim).map(|k| ((i + k) % 2) as f64).collect())
        .collect();
    let cfg = helio_ann::DbnConfig {
        hidden: vec![128, 128],
        rbm_epochs: 10,
        rbm_lr: 0.1,
        bp_epochs: 30,
        bp_lr: 0.4,
        seed: 9,
    };
    let dbn = std::sync::Arc::new(helio_ann::Dbn::train(&inputs, &targets, &cfg).expect("train"));
    let traces: Vec<_> = (0..B)
        .map(|i| {
            TraceBuilder::new(grid, SolarPanel::paper_panel())
                .seed(9000 + i as u64)
                .weather(WeatherProcess::temperate())
                .build()
        })
        .collect();
    let planner = |dbn: &std::sync::Arc<helio_ann::Dbn>| {
        heliosched::ProposedPlanner::from_shared_dbn(
            std::sync::Arc::clone(dbn),
            0.5,
            heliosched::SwitchRule::default(),
        )
    };
    let mut group = c.benchmark_group("batch_loop");
    group.sample_size(20);
    group.bench_function("sequential_16_dbn_scenarios", |b| {
        b.iter(|| {
            for trace in &traces {
                let mut p = planner(&dbn);
                let report = Engine::new(&node, &graph, trace)
                    .expect("engine")
                    .run(&mut p)
                    .expect("run");
                black_box(report);
            }
        })
    });
    group.bench_function("batched_16_dbn_scenarios", |b| {
        b.iter(|| {
            let mut engine = heliosched::BatchEngine::new(&node, &graph).expect("batch engine");
            for trace in &traces {
                engine
                    .push(heliosched::BatchScenario::new(
                        trace,
                        Box::new(planner(&dbn)),
                    ))
                    .expect("scenario");
            }
            black_box(engine.run().expect("batched run"))
        })
    });
    group.finish();
}

fn fleet_loop(c: &mut Criterion) {
    // The sharded fleet path against the single-shard batch it
    // partitions: 64 DBN-planned scenarios split over 1, 2 and 4
    // shards via `run_sharded` — the dispatch `helio-fleet` and
    // `bench_fleet` drive. Byte-identity across shard counts is
    // CI-gated by `tests/golden_online.rs` and `tests/shard_props.rs`;
    // this group guards the partition-and-join overhead.
    const B: usize = 64;
    let grid = helio_common::time::TimeGrid::new(1, 48, 2, Seconds::new(300.0)).expect("grid");
    let graph = benchmarks::ecg();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .expect("node");
    let in_dim = grid.slots_per_period() + node.capacitors.len() + 1;
    let out_dim = 2 + graph.len();
    let inputs: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..in_dim)
                .map(|k| ((i * 7 + k * 13) % 50) as f64 / 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..64)
        .map(|i| (0..out_dim).map(|k| ((i + k) % 2) as f64).collect())
        .collect();
    let cfg = helio_ann::DbnConfig {
        hidden: vec![128, 128],
        rbm_epochs: 10,
        rbm_lr: 0.1,
        bp_epochs: 30,
        bp_lr: 0.4,
        seed: 9,
    };
    let dbn = std::sync::Arc::new(helio_ann::Dbn::train(&inputs, &targets, &cfg).expect("train"));
    let traces: Vec<_> = (0..B)
        .map(|i| {
            TraceBuilder::new(grid, SolarPanel::paper_panel())
                .seed(17_000 + i as u64)
                .weather(WeatherProcess::temperate())
                .build()
        })
        .collect();
    let planner = |dbn: &std::sync::Arc<helio_ann::Dbn>| {
        heliosched::ProposedPlanner::from_shared_dbn(
            std::sync::Arc::clone(dbn),
            0.5,
            heliosched::SwitchRule::default(),
        )
    };
    let mut group = c.benchmark_group("fleet_loop");
    group.sample_size(20);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sharded_64_dbn_scenarios", shards),
            &shards,
            |b, &s| {
                b.iter(|| {
                    let mut engine =
                        heliosched::BatchEngine::new(&node, &graph).expect("batch engine");
                    for trace in &traces {
                        engine
                            .push(heliosched::BatchScenario::new(
                                trace,
                                Box::new(planner(&dbn)),
                            ))
                            .expect("scenario");
                    }
                    black_box(engine.run_sharded(s).expect("sharded run"))
                })
            },
        );
    }
    group.finish();
}

fn fig8_fig9_dp(c: &mut Criterion) {
    let storage = StorageModelParams::default();
    let pmu = Pmu::default();
    let graph = benchmarks::ecg();
    let subsets = dmr_level_subsets(&graph, 2);
    let cap = SuperCap::new(Farads::new(10.0), &storage).expect("valid");
    let grid = paper_grid(1, 144);
    let trace = weather_trace(1, 144, 5);
    let solar: Vec<Vec<Joules>> = (0..grid.periods_per_day())
        .map(|j| {
            grid.slots_in(helio_common::time::PeriodRef::new(0, j))
                .map(|s| trace.slot_energy(s))
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("fig8_fig9_dp");
    group.sample_size(10);
    group.bench_function("optimize_one_day_ecg", |b| {
        b.iter(|| {
            optimize_horizon(
                &graph,
                &subsets,
                black_box(&solar),
                Seconds::new(60.0),
                &cap,
                cap.empty_state(),
                &storage,
                &pmu,
                &DpConfig::default(),
            )
        })
    });
    group.finish();
}

fn matmul_kernels(c: &mut Criterion) {
    // Batch-forward shape: 128 samples × 64 features against a 32×64
    // weight matrix (X · Wᵀ). The blocked product replaces one matvec
    // per sample in the RBM/MLP batch paths.
    let x = helio_ann::Matrix::from_rows(
        &(0..128)
            .map(|i| {
                (0..64)
                    .map(|k| ((i * 31 + k * 7) % 97) as f64 / 97.0)
                    .collect()
            })
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("x");
    let w = helio_ann::Matrix::from_rows(
        &(0..32)
            .map(|j| {
                (0..64)
                    .map(|k| ((j * 13 + k * 11) % 89) as f64 / 89.0)
                    .collect()
            })
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("w");
    let mut group = c.benchmark_group("matmul");
    group.bench_function("matvec_per_row_128x64x32", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..128 {
                let row: Vec<f64> = (0..64).map(|k| x.get(i, k)).collect();
                acc += w.matvec(black_box(&row)).expect("matvec")[0];
            }
            acc
        })
    });
    group.bench_function("blocked_bt_128x64x32", |b| {
        b.iter(|| x.matmul_bt(black_box(&w)).expect("matmul"))
    });
    group.finish();
}

fn dp_memoization(c: &mut Criterion) {
    // Serial reference vs memoized+parallel DP on identical inputs —
    // the speedup `bench_offline` reports, under Criterion's sampling.
    let storage = StorageModelParams::default();
    let pmu = Pmu::default();
    let graph = benchmarks::ecg();
    let subsets = dmr_level_subsets(&graph, 2);
    let cap = SuperCap::new(Farads::new(10.0), &storage).expect("valid");
    let grid = paper_grid(1, 48);
    let trace = weather_trace(1, 48, 5);
    let solar: Vec<Vec<Joules>> = (0..grid.periods_per_day())
        .map(|j| {
            grid.slots_in(helio_common::time::PeriodRef::new(0, j))
                .map(|s| trace.slot_energy(s))
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("dp_memoization");
    group.sample_size(10);
    group.bench_function("serial_reference", |b| {
        b.iter(|| {
            heliosched::optimize_horizon_serial(
                &graph,
                &subsets,
                black_box(&solar),
                Seconds::new(60.0),
                &cap,
                cap.empty_state(),
                &storage,
                &pmu,
                &DpConfig::default(),
            )
        })
    });
    group.bench_function("cached_parallel", |b| {
        b.iter(|| {
            optimize_horizon(
                &graph,
                &subsets,
                black_box(&solar),
                Seconds::new(60.0),
                &cap,
                cap.empty_state(),
                &storage,
                &pmu,
                &DpConfig::default(),
            )
        })
    });
    group.finish();
}

fn fig10a_mpc(c: &mut Criterion) {
    let storage = StorageModelParams::default();
    let pmu = Pmu::default();
    let graph = benchmarks::random_case(1);
    let subsets = dmr_level_subsets(&graph, 2);
    let cap = SuperCap::new(Farads::new(10.0), &storage).expect("valid");
    let trace = weather_trace(4, 144, 6);
    let oracle = NoisyOracle::new(7, 0.02, 0.12);
    let mut group = c.benchmark_group("fig10a_mpc");
    group.sample_size(10);
    for hours in [6usize, 24, 48] {
        let horizon = hours * 6;
        let predicted = oracle.forecast(&trace, helio_common::time::PeriodRef::new(0, 0), horizon);
        let solar: Vec<Vec<Joules>> = predicted.iter().map(|&e| vec![e / 10.0; 10]).collect();
        group.bench_with_input(
            BenchmarkId::new("replan", format!("{hours}h")),
            &solar,
            |b, solar| {
                b.iter(|| {
                    optimize_horizon(
                        &graph,
                        &subsets,
                        black_box(solar),
                        Seconds::new(60.0),
                        &cap,
                        cap.empty_state(),
                        &storage,
                        &pmu,
                        &DpConfig::default(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn fig10b_sizing(c: &mut Criterion) {
    let storage = StorageModelParams::default();
    let trace = weather_trace(1, 144, 8);
    let demand = heliosched::offline::asap_demand_profile(
        &benchmarks::random_case(1),
        10,
        Seconds::new(60.0),
    );
    let mut delta_e = Vec::new();
    for j in 0..144 {
        for (m, s) in trace
            .grid()
            .slots_in(helio_common::time::PeriodRef::new(0, j))
            .enumerate()
        {
            delta_e.push(trace.slot_energy(s) - demand[m]);
        }
    }
    let mut group = c.benchmark_group("fig10b_sizing");
    group.sample_size(10);
    group.bench_function("optimal_capacitance_one_day", |b| {
        b.iter(|| {
            optimal_capacitance(
                black_box(&delta_e),
                Seconds::new(60.0),
                &storage,
                Farads::new(0.5),
                Farads::new(120.0),
            )
            .expect("sizing")
        })
    });
    group.finish();
}

fn sec65_dbn(c: &mut Criterion) {
    // Training-shaped data: 13 inputs (10 slots + 2 caps + DMR), 8
    // outputs (cap, alpha, 6 te bits).
    let inputs: Vec<Vec<f64>> = (0..96)
        .map(|i| {
            (0..13)
                .map(|k| ((i * 7 + k * 13) % 50) as f64 / 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..96)
        .map(|i| (0..8).map(|k| ((i + k) % 2) as f64).collect())
        .collect();
    let mut group = c.benchmark_group("sec65_dbn");
    group.sample_size(10);
    group.bench_function("train_small", |b| {
        b.iter_batched(
            || (inputs.clone(), targets.clone()),
            |(x, y)| {
                let mut cfg = helio_ann::DbnConfig::small(3);
                cfg.bp_epochs = 50;
                helio_ann::Dbn::train(&x, &y, &cfg).expect("train")
            },
            BatchSize::SmallInput,
        )
    });
    let dbn = {
        let mut cfg = helio_ann::DbnConfig::small(3);
        cfg.bp_epochs = 50;
        helio_ann::Dbn::train(&inputs, &targets, &cfg).expect("train")
    };
    group.bench_function("infer_one_period", |b| {
        // The zero-alloc reference path (`predict` would allocate a
        // scratch and output Vec every iteration).
        let mut scratch = helio_ann::PredictScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            dbn.predict_into(black_box(&inputs[0]), &mut scratch, &mut out)
                .expect("predict");
            out[0]
        })
    });
    group.finish();
}

fn decision_loop(c: &mut Criterion) {
    // The per-period decision gap this repo's compiled path closes:
    // reference f64 `predict_into` vs the packed `CompiledDbn` forward
    // at both tiers, on the golden network shape (13 → 16 → 10 → 10).
    // Tracked per commit alongside slot_loop/batch_loop/fleet_loop.
    let inputs: Vec<Vec<f64>> = (0..96)
        .map(|i| {
            (0..13)
                .map(|k| ((i * 7 + k * 13) % 50) as f64 / 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..96)
        .map(|i| (0..10).map(|k| ((i + k) % 2) as f64).collect())
        .collect();
    let dbn = {
        let mut cfg = helio_ann::DbnConfig::small(3);
        cfg.bp_epochs = 50;
        helio_ann::Dbn::train(&inputs, &targets, &cfg).expect("train")
    };
    let mut group = c.benchmark_group("decision_loop");
    group.bench_function("predict_into_f64", |b| {
        let mut scratch = helio_ann::PredictScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            dbn.predict_into(black_box(&inputs[0]), &mut scratch, &mut out)
                .expect("predict");
            out[0]
        })
    });
    for (name, tier) in [
        ("compiled_f32", helio_ann::CompiledTier::F32),
        ("compiled_i8", helio_ann::CompiledTier::Int8),
    ] {
        let compiled = helio_ann::CompiledDbn::compile(&dbn, tier).expect("compiles");
        let mut scratch = compiled.make_scratch();
        let mut out = Vec::with_capacity(compiled.output_dim());
        group.bench_function(name, |b| {
            b.iter(|| {
                compiled
                    .forward_into(black_box(&inputs[0]), &mut scratch, &mut out)
                    .expect("forward");
                out[0]
            })
        });
    }
    group.finish();
}

fn distill_loop(c: &mut Criterion) {
    // The distilled branch-free artifact against the paths it
    // outranks, plus its own setup stages: `prewalk`/`fold` run once
    // per period (constant-prefix work), `predict_folded` is the
    // per-decision hot path the BENCH_online `distilled` row times
    // end-to-end through the planner.
    let inputs: Vec<Vec<f64>> = (0..96)
        .map(|i| {
            (0..13)
                .map(|k| ((i * 7 + k * 13) % 50) as f64 / 10.0)
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..96)
        .map(|i| (0..10).map(|k| ((i + k) % 2) as f64).collect())
        .collect();
    let dbn = {
        let mut cfg = helio_ann::DbnConfig::small(3);
        cfg.bp_epochs = 50;
        helio_ann::Dbn::train(&inputs, &targets, &cfg).expect("train")
    };
    let policy = {
        let cfg = helio_ann::DistillConfig {
            samples: 8192,
            holdout: 1024,
            ..helio_ann::DistillConfig::small(3)
        };
        helio_ann::DistilledPolicy::distill(&dbn, 10, &[], &cfg).expect("distils")
    };
    let mut group = c.benchmark_group("distill_loop");
    group.bench_function("predict_flat", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            policy
                .predict_into(black_box(&inputs[0]), &mut out)
                .expect("predict");
            out[0]
        })
    });
    group.bench_function("prewalk_fold_once_per_period", |b| {
        let mut folded = Vec::new();
        b.iter(|| {
            let cursor = policy.prewalk(black_box(&inputs[0])).expect("prewalk");
            policy
                .fold(cursor, black_box(&inputs[0]), &mut folded)
                .expect("fold");
            cursor
        })
    });
    group.bench_function("predict_folded", |b| {
        let mut folded = Vec::new();
        let mut out = Vec::new();
        let cursor = policy.prewalk(&inputs[0]).expect("prewalk");
        policy.fold(cursor, &inputs[0], &mut folded).expect("fold");
        b.iter(|| {
            policy
                .predict_folded(cursor, &folded, black_box(&inputs[1]), &mut out)
                .expect("predict");
            out[0]
        })
    });
    group.finish();
}

fn train_loop(c: &mut Criterion) {
    // The training hot loops behind `bench_train`'s stage timings:
    // scratch-based CD-1 and back-propagation epochs on packed sample
    // matrices, against the per-sample-step loops they replaced (one
    // fresh scratch per step — the pre-refactor allocation pattern).
    // Bit-identity of the two paths is proptest- and golden-gated;
    // this group guards the throughput edge.
    use helio_common::rng::seeded;
    let mut rng = seeded(0x7124);
    let xs = helio_ann::Matrix::random(96, 13, 1.0, &mut rng);
    let ys = helio_ann::Matrix::random(96, 8, 0.5, &mut rng);
    let mut group = c.benchmark_group("train_loop");
    group.sample_size(20);
    group.bench_function("rbm_cd1_30_epochs_scratch", |b| {
        b.iter_batched(
            || {
                let mut rng = seeded(5);
                (helio_ann::Rbm::new(13, 16, &mut rng), rng)
            },
            |(mut rbm, mut rng)| {
                rbm.train_matrix(black_box(&xs), 30, 0.1, &mut rng)
                    .expect("trains")
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rbm_cd1_30_epochs_per_step", |b| {
        b.iter_batched(
            || {
                let mut rng = seeded(5);
                (helio_ann::Rbm::new(13, 16, &mut rng), rng)
            },
            |(mut rbm, mut rng)| {
                let mut last = 0.0;
                for _ in 0..30 {
                    for i in 0..xs.rows() {
                        last = rbm.cd1_step(xs.row(i), 0.1, &mut rng).expect("steps");
                    }
                }
                last
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("mlp_bp_50_epochs_scratch", |b| {
        b.iter_batched(
            || helio_ann::Mlp::new(&[13, 16, 10, 8], &mut seeded(6)).expect("mlp"),
            |mut mlp| {
                mlp.train_matrix(black_box(&xs), &ys, 50, 0.4)
                    .expect("trains")
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("mlp_bp_50_epochs_per_step", |b| {
        b.iter_batched(
            || helio_ann::Mlp::new(&[13, 16, 10, 8], &mut seeded(6)).expect("mlp"),
            |mut mlp| {
                let mut last = 0.0;
                for _ in 0..50 {
                    for i in 0..xs.rows() {
                        last = mlp.sgd_step(xs.row(i), ys.row(i), 0.4).expect("steps");
                    }
                }
                last
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    fig5_regulator,
    fig7_solar,
    table2_migration,
    fig8_engine,
    slot_loop,
    batch_loop,
    fleet_loop,
    fig8_fig9_dp,
    matmul_kernels,
    dp_memoization,
    fig10a_mpc,
    fig10b_sizing,
    sec65_dbn,
    decision_loop,
    distill_loop,
    train_loop
);
criterion_main!(benches);
