//! Reproducibility: every stochastic component is seeded, so identical
//! configurations must give bit-identical results across runs.

use helio_solar::WeatherProcess;
use heliosched::prelude::*;
use heliosched::{DpConfig, NodeConfig, OfflineConfig};

fn grid(days: usize) -> TimeGrid {
    TimeGrid::new(days, 24, 10, Seconds::new(60.0)).expect("valid grid")
}

fn trace(days: usize, seed: u64) -> helio_solar::SolarTrace {
    TraceBuilder::new(grid(days), SolarPanel::paper_panel())
        .seed(seed)
        .weather(WeatherProcess::temperate())
        .build()
}

#[test]
fn traces_are_reproducible() {
    assert_eq!(trace(5, 1), trace(5, 1));
    assert_ne!(trace(5, 1), trace(5, 2));
}

#[test]
fn baseline_runs_are_reproducible() {
    let t = trace(2, 3);
    let node = NodeConfig::builder(grid(2))
        .capacitors(&[Farads::new(10.0)])
        .build()
        .expect("node");
    let graph = benchmarks::wam();
    let engine = Engine::new(&node, &graph, &t).expect("engine");
    let a = engine
        .run(&mut FixedPlanner::new(Pattern::Inter, 0))
        .expect("run");
    let b = engine
        .run(&mut FixedPlanner::new(Pattern::Inter, 0))
        .expect("run");
    assert_eq!(a, b);
}

#[test]
fn optimal_plans_are_reproducible() {
    let t = trace(2, 4);
    let node = NodeConfig::builder(grid(2))
        .capacitors(&[Farads::new(2.0), Farads::new(22.0)])
        .build()
        .expect("node");
    let graph = benchmarks::ecg();
    let engine = Engine::new(&node, &graph, &t).expect("engine");
    let run = || {
        let mut p =
            OptimalPlanner::compute(&node, &graph, &t, &DpConfig::default(), 0.5).expect("optimal");
        engine.run(&mut p).expect("run")
    };
    assert_eq!(run(), run());
}

#[test]
fn trained_planners_are_reproducible() {
    let training = trace(2, 5);
    let node = NodeConfig::builder(grid(2))
        .capacitors(&[Farads::new(2.0), Farads::new(22.0)])
        .build()
        .expect("node");
    let graph = benchmarks::shm();
    let mut cfg = OfflineConfig::default();
    cfg.dbn.bp_epochs = 60;
    let engine = Engine::new(&node, &graph, &training).expect("engine");
    let run = || {
        let mut p = train_proposed(&node, &graph, &training, &cfg).expect("train");
        engine.run(&mut p).expect("run")
    };
    assert_eq!(run(), run());
}

#[test]
fn mpc_with_noisy_oracle_is_reproducible() {
    let t = trace(2, 6);
    let node = NodeConfig::builder(grid(2))
        .capacitors(&[Farads::new(10.0)])
        .build()
        .expect("node");
    let graph = benchmarks::random_case(2);
    let engine = Engine::new(&node, &graph, &t).expect("engine");
    let run = || {
        let mut p = heliosched::ProposedPlanner::mpc(
            Box::new(NoisyOracle::new(9, 0.05, 0.1)),
            24,
            DpConfig::default(),
            0.5,
            heliosched::SwitchRule::default(),
        );
        engine.run(&mut p).expect("run")
    };
    assert_eq!(run(), run());
}
