//! Property-based "no panic" guarantees: arbitrary finite
//! configurations and fault plans may produce errors, but never abort
//! the process. This is the library-level contract behind the
//! fault-injection harness — a sensor node simulator that panics on a
//! weird input cannot model a node that degrades gracefully.

use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_faults::{
    AgingFault, DbnFault, DbnFaultMode, FaultHarness, FaultPlan, ForecastFault, ForecastMode,
    PeriodWindow, PmuStuckFault, RandomBlackouts, SolarFault,
};
use helio_solar::{DayArchetype, SolarPanel, TraceBuilder};
use helio_tasks::benchmarks;
use heliosched::{Engine, FixedPlanner, NodeConfig, Pattern, ResilientPlanner};
use proptest::prelude::*;

fn pattern(i: usize) -> Pattern {
    match i % 3 {
        0 => Pattern::Asap,
        1 => Pattern::Inter,
        _ => Pattern::Intra,
    }
}

fn archetype(i: usize) -> DayArchetype {
    DayArchetype::ALL[i % DayArchetype::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `NodeConfig::build` + `Engine::new` + `run` return `Result`s —
    /// never panic — for arbitrary finite grids, banks and patterns.
    #[test]
    fn engine_never_panics_on_finite_configs(
        days in 1usize..3,
        periods in 2usize..26,
        slots in 2usize..12,
        slot_secs in 10.0f64..300.0,
        caps in prop::collection::vec(0.5f64..50.0, 1..4),
        pat in 0usize..3,
        cap_choice in 0usize..6,
        seed in 0u64..1000,
    ) {
        let Ok(grid) = TimeGrid::new(days, periods, slots, Seconds::new(slot_secs)) else {
            return;
        };
        let archetypes: Vec<DayArchetype> =
            (0..days).map(|d| archetype(seed as usize + d)).collect();
        let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
            .seed(seed)
            .days(&archetypes)
            .build();
        let sizes: Vec<Farads> = caps.iter().map(|&c| Farads::new(c)).collect();
        let node = match NodeConfig::builder(grid).capacitors(&sizes).build() {
            Ok(n) => n,
            Err(_) => return,
        };
        let graph = benchmarks::ecg();
        // Short grids reject the benchmark's deadlines — an error, not
        // a panic.
        let engine = match Engine::new(&node, &graph, &trace) {
            Ok(e) => e,
            Err(_) => return,
        };
        // `cap_choice` may exceed the bank: `run` must surface a typed
        // error for that, and succeed otherwise. Either way: no panic.
        let _ = engine.run(&mut FixedPlanner::new(pattern(pat), cap_choice));
    }

    /// Arbitrary fault plans (including degenerate windows, extreme
    /// factors, out-of-range channels) never panic the engine, with or
    /// without the resilient wrapper.
    #[test]
    fn fault_injection_never_panics(
        seed in 0u64..1000,
        outage_start in 0usize..60,
        outage_len in 0usize..80,
        factor in -1.0f64..2.0,
        fade in 0.0f64..1.5,
        growth in 0.5f64..3.0,
        channel in 0usize..9,
        fmode in 0usize..3,
        blackout_p in 0.0f64..0.5,
    ) {
        let grid = TimeGrid::new(2, 24, 6, Seconds::new(100.0)).expect("static grid");
        let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
            .seed(seed)
            .days(&[archetype(seed as usize), archetype(seed as usize + 1)])
            .build();
        let node = NodeConfig::builder(grid)
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .expect("static node");
        let graph = benchmarks::ecg();
        let engine = Engine::new(&node, &graph, &trace).expect("static engine");
        let plan = FaultPlan {
            seed,
            solar: vec![SolarFault {
                window: PeriodWindow::new(outage_start, outage_len),
                factor,
            }],
            random_blackouts: Some(RandomBlackouts {
                per_period_probability: blackout_p,
                min_periods: 1,
                max_periods: 4,
            }),
            aging: Some(AgingFault {
                capacitance_fade_per_day: fade,
                leakage_growth_per_day: growth,
            }),
            pmu_stuck: vec![PmuStuckFault {
                window: PeriodWindow::new(outage_start / 2, outage_len / 2),
                channel,
            }],
            forecast: vec![ForecastFault {
                window: PeriodWindow::new(0, outage_len),
                mode: match fmode {
                    0 => ForecastMode::Scale(factor * 3.0),
                    1 => ForecastMode::Nan,
                    _ => ForecastMode::Zero,
                },
            }],
            dbn: vec![DbnFault {
                window: PeriodWindow::new(outage_start, 4),
                mode: if seed % 2 == 0 {
                    DbnFaultMode::Unavailable
                } else {
                    DbnFaultMode::Nan
                },
            }],
        };
        let harness = FaultHarness::new(&plan, grid.total_periods(), 24);
        let bare = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Intra, 0), Some(&harness));
        prop_assert!(bare.is_ok(), "faulted run errored: {:?}", bare.err());
        let mut wrapped =
            ResilientPlanner::new(Box::new(FixedPlanner::new(Pattern::Intra, 0)));
        let resilient = engine.run_with_faults(&mut wrapped, Some(&harness));
        prop_assert!(resilient.is_ok());
        // Same plan, same harness: byte-deterministic.
        let again = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Intra, 0), Some(&harness));
        prop_assert_eq!(bare.expect("ok"), again.expect("ok"));
    }
}
