//! Small-scale regression tests pinning the paper's headline *shapes*
//! so they cannot silently rot. These mirror the full experiments in
//! `helio-bench` at unit-test scale.

use helio_common::units::Farads;
use helio_solar::WeatherProcess;
use heliosched::prelude::*;
use heliosched::{day_night_split, DpConfig, NodeConfig};

fn grid(days: usize) -> TimeGrid {
    TimeGrid::new(days, 24, 10, Seconds::new(60.0)).expect("valid grid")
}

fn archetype_trace(archetypes: &[DayArchetype], seed: u64) -> helio_solar::SolarTrace {
    TraceBuilder::new(grid(archetypes.len()), SolarPanel::paper_panel())
        .seed(seed)
        .days(archetypes)
        .build()
}

fn node(days: usize) -> NodeConfig {
    NodeConfig::builder(grid(days))
        .capacitors(&[Farads::new(2.0), Farads::new(22.0)])
        .build()
        .expect("node")
}

/// Fig. 1 / Fig. 8 headline: the long-term planner's advantage over the
/// greedy baseline comes from the dark hours.
#[test]
fn longterm_advantage_concentrates_at_night() {
    let trace = archetype_trace(&[DayArchetype::Overcast], 21);
    let node = node(1);
    let graph = benchmarks::shm();
    let engine = Engine::new(&node, &graph, &trace).expect("engine");

    let greedy = engine
        .run(&mut FixedPlanner::new(Pattern::Intra, 1))
        .expect("greedy");
    let mut planner =
        OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5).expect("optimal");
    let longterm = engine.run(&mut planner).expect("optimal run");

    assert!(longterm.overall_dmr() <= greedy.overall_dmr() + 1e-9);
    let g_split = day_night_split(&greedy, &node.grid);
    let l_split = day_night_split(&longterm, &node.grid);
    let night_gain = g_split.night_dmr - l_split.night_dmr;
    let day_gain = g_split.day_dmr - l_split.day_dmr;
    assert!(
        night_gain >= day_gain - 0.05,
        "the night should benefit at least as much: night {night_gain} day {day_gain}"
    );
}

/// Fig. 8 headline: the advantage grows as daily solar energy shrinks.
#[test]
fn advantage_grows_as_solar_shrinks() {
    let graph = benchmarks::ecg();
    let mut gains = Vec::new();
    for archetype in [DayArchetype::Clear, DayArchetype::Overcast] {
        let trace = archetype_trace(&[archetype], 22);
        let node = node(1);
        let engine = Engine::new(&node, &graph, &trace).expect("engine");
        let inter = engine
            .run(&mut FixedPlanner::new(Pattern::Inter, 1))
            .expect("inter");
        let mut planner = OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5)
            .expect("optimal");
        let opt = engine.run(&mut planner).expect("run");
        gains.push(inter.overall_dmr() - opt.overall_dmr());
    }
    assert!(
        gains[1] >= gains[0] - 0.02,
        "overcast gain {} should be at least the clear-day gain {}",
        gains[1],
        gains[0]
    );
}

/// Table 2 headline: the best capacitor size depends on the migration
/// pattern (already tested in helio-storage; here we pin the crossover
/// itself).
#[test]
fn capacitor_optimum_crosses_over_with_pattern() {
    use helio_storage::{migration_efficiency, MigrationSpec, StorageModelParams, SuperCap};
    let params = StorageModelParams::default();
    let small = SuperCap::new(Farads::new(1.0), &params).expect("cap");
    let mid = SuperCap::new(Farads::new(10.0), &params).expect("cap");
    let short = MigrationSpec::small_short();
    let long = MigrationSpec::large_long();
    assert!(
        migration_efficiency(&small, &params, short) > migration_efficiency(&mid, &params, short)
    );
    assert!(
        migration_efficiency(&mid, &params, long) > migration_efficiency(&small, &params, long)
    );
}

/// Section 6.4 headline: more supercapacitors cannot hurt the optimal
/// planner (it may ignore the extra sizes).
#[test]
fn more_capacitors_never_hurt() {
    let trace = TraceBuilder::new(grid(2), SolarPanel::paper_panel())
        .seed(23)
        .weather(WeatherProcess::temperate())
        .build();
    let graph = benchmarks::random_case(1);
    let mut dmrs = Vec::new();
    for sizes in [
        vec![Farads::new(10.0)],
        vec![Farads::new(2.0), Farads::new(10.0), Farads::new(47.0)],
    ] {
        let node = NodeConfig::builder(grid(2))
            .capacitors(&sizes)
            .build()
            .expect("node");
        let mut planner = OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5)
            .expect("optimal");
        let r = Engine::new(&node, &graph, &trace)
            .expect("engine")
            .run(&mut planner)
            .expect("run");
        dmrs.push(r.overall_dmr());
    }
    assert!(
        dmrs[1] <= dmrs[0] + 0.03,
        "3 caps {} should not lose to 1 cap {}",
        dmrs[1],
        dmrs[0]
    );
}

/// Section 6.5 headline: the scheduler's own energy stays under 3 % of
/// the workload for every benchmark.
#[test]
fn scheduler_overhead_is_negligible() {
    let model = heliosched::OverheadModel::default();
    let g = grid(1);
    for graph in benchmarks::all_six() {
        let r = model.estimate(&graph, &g);
        assert!(r.energy_fraction < 0.03, "{}", graph.name());
    }
}

/// NVP backup/restore bookkeeping survives the whole pipeline: a
/// greedy run on a storm day must brown out, back up state, and charge
/// the microjoule-scale overhead.
#[test]
fn brownouts_trigger_nvp_backups() {
    let trace = archetype_trace(&[DayArchetype::Storm], 24);
    let node = node(1);
    let graph = benchmarks::wam();
    let report = Engine::new(&node, &graph, &trace)
        .expect("engine")
        .run(&mut FixedPlanner::new(Pattern::Asap, 1))
        .expect("run");
    assert!(report.nvp_backups > 0, "storm + ASAP must brown out");
    assert!(report.nvp_overhead.value() > 0.0);
    assert!(
        report.nvp_overhead.value() < 0.01,
        "backup overhead must stay microjoule-scale: {}",
        report.nvp_overhead
    );
}
