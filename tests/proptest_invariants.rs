//! Property-based tests over the core data structures and physical
//! invariants, spanning crates.

use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Joules, Seconds, Volts, Watts};
use helio_nvp::Pmu;
use helio_storage::{
    migration_efficiency, CapacitorBank, MigrationSpec, StorageModelParams, SuperCap,
};
use helio_tasks::{random_graph, RandomGraphConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any migration (quantity, duration, size) yields an efficiency in
    /// [0, 1].
    #[test]
    fn migration_efficiency_is_a_fraction(
        c in 0.2f64..200.0,
        quantity in 0.1f64..100.0,
        minutes in 5.0f64..1000.0,
    ) {
        let params = StorageModelParams::default();
        let cap = SuperCap::new(Farads::new(c), &params).unwrap();
        let spec = MigrationSpec::new(Joules::new(quantity), Seconds::from_minutes(minutes));
        let eff = migration_efficiency(&cap, &params, spec);
        prop_assert!((0.0..=1.0).contains(&eff), "eff {}", eff);
    }

    /// Charging then fully discharging never yields more than was
    /// absorbed.
    #[test]
    fn round_trip_never_gains(
        c in 0.2f64..200.0,
        offered in 0.1f64..500.0,
        v0 in 1.0f64..5.0,
    ) {
        let params = StorageModelParams::default();
        let cap = SuperCap::new(Farads::new(c), &params).unwrap();
        let mut state = cap.state_at(Volts::new(v0));
        let before = state.stored_energy(&cap);
        let drawn = cap.charge(&mut state, &params, Joules::new(offered));
        let delivered = cap.discharge(&mut state, &params, Joules::new(1e9));
        // Delivered can use pre-existing charge, so compare against
        // drawn + initial usable energy.
        let budget = drawn + before;
        prop_assert!(delivered <= budget + Joules::new(1e-9),
            "delivered {} > drawn {} + initial {}", delivered, drawn, before);
    }

    /// The leakage step removes exactly the energy it reports.
    #[test]
    fn leak_is_accounted(
        c in 0.2f64..200.0,
        v0 in 0.5f64..5.0,
        minutes in 1.0f64..2000.0,
    ) {
        let params = StorageModelParams::default();
        let cap = SuperCap::new(Farads::new(c), &params).unwrap();
        let mut state = cap.state_at(Volts::new(v0));
        let before = state.stored_energy(&cap);
        let lost = cap.leak(&mut state, &params, Seconds::from_minutes(minutes));
        let after = state.stored_energy(&cap);
        prop_assert!((before.value() - after.value() - lost.value()).abs() < 1e-9);
        prop_assert!(after.value() >= -1e-12);
    }

    /// PMU slot settlement conserves both ledgers for arbitrary inputs.
    #[test]
    fn pmu_ledgers_balance(
        harvest in 0.0f64..50.0,
        demand in 0.0f64..50.0,
        c in 0.5f64..100.0,
        precharge in 0.0f64..100.0,
    ) {
        let storage = StorageModelParams::default();
        let mut bank = CapacitorBank::new(&[Farads::new(c)], &storage).unwrap();
        bank.charge_active(&storage, Joules::new(precharge));
        let pmu = Pmu::default();
        let flow = pmu.settle_slot(Joules::new(harvest), Joules::new(demand), &mut bank, &storage);
        let demand_side = (flow.served_direct + flow.served_storage + flow.unmet).value();
        prop_assert!((flow.demand.value() - demand_side).abs() < 1e-9);
        let harvest_side = (flow.used_direct + flow.stored + flow.wasted).value();
        prop_assert!((flow.harvested.value() - harvest_side).abs() < 1e-9);
        prop_assert!(flow.unmet.value() >= -1e-12);
    }

    /// Random task graphs always validate and expose consistent
    /// structure.
    #[test]
    fn random_graphs_are_well_formed(seed in 0u64..500) {
        let cfg = RandomGraphConfig::paper_ranges();
        let g = random_graph("prop", seed, &cfg);
        prop_assert!(g.validate(Seconds::new(cfg.period)).is_ok());
        let order = g.topological_order().unwrap();
        prop_assert_eq!(order.len(), g.len());
        // Every edge goes forward in the topological order.
        for (from, to) in g.edges() {
            let pf = order.iter().position(|x| x == from).unwrap();
            let pt = order.iter().position(|x| x == to).unwrap();
            prop_assert!(pf < pt);
        }
        // EDF finish times are within the period and cover exec times.
        let finish = g.edf_finish_times().unwrap();
        for id in g.ids() {
            prop_assert!(finish[id.index()].value() >= g.task(id).exec_time.value() - 1e-9);
            prop_assert!(finish[id.index()].value() <= cfg.period + 1e-9);
        }
    }

    /// Time-grid index mappings are bijective.
    #[test]
    fn grid_indexing_round_trips(
        days in 1usize..5,
        periods in 1usize..40,
        slots in 1usize..15,
        pick in 0usize..10_000,
    ) {
        let grid = TimeGrid::new(days, periods, slots, Seconds::new(60.0)).unwrap();
        let idx = pick % grid.total_slots();
        let slot = grid.slot_at(idx);
        prop_assert_eq!(grid.slot_index(slot), idx);
        let pidx = pick % grid.total_periods();
        let period = grid.period_at(pidx);
        prop_assert_eq!(grid.period_index(period), pidx);
    }

    /// Unit arithmetic: (P·t)/t == P and capacitor energy round trips.
    #[test]
    fn unit_algebra_round_trips(p_mw in 0.01f64..1000.0, secs in 0.1f64..10_000.0, c in 0.1f64..200.0) {
        let p = Watts::from_milliwatts(p_mw);
        let t = Seconds::new(secs);
        let e = p * t;
        let p2 = e / t;
        prop_assert!((p2.value() - p.value()).abs() < 1e-12 * p.value().max(1.0));
        let cap = Farads::new(c);
        let v = cap.voltage_for_energy(e);
        let e2 = cap.stored_energy(v);
        prop_assert!((e2.value() - e.value()).abs() < 1e-9 * e.value().max(1.0));
    }
}
