//! Cross-crate energy-ledger invariants: no joule may appear or
//! disappear unaccounted anywhere between the panel and the load.

use heliosched::prelude::*;
use heliosched::{DpConfig, NodeConfig};

fn grid(days: usize) -> TimeGrid {
    TimeGrid::new(days, 24, 10, Seconds::new(60.0)).expect("valid grid")
}

fn run_one(
    pattern: Pattern,
    archetypes: &[DayArchetype],
    caps: &[f64],
) -> (heliosched::SimReport, NodeConfig) {
    let days = archetypes.len();
    let trace = TraceBuilder::new(grid(days), SolarPanel::paper_panel())
        .seed(17)
        .days(archetypes)
        .build();
    let sizes: Vec<Farads> = caps.iter().map(|&c| Farads::new(c)).collect();
    let node = NodeConfig::builder(grid(days))
        .capacitors(&sizes)
        .build()
        .expect("node");
    let graph = benchmarks::wam();
    let report = Engine::new(&node, &graph, &trace)
        .expect("engine")
        .run(&mut FixedPlanner::new(pattern, 0))
        .expect("run");
    (report, node)
}

#[test]
fn harvest_ledger_balances_every_period() {
    for pattern in [Pattern::Asap, Pattern::Inter, Pattern::Intra] {
        let (report, node) = run_one(
            pattern,
            &[DayArchetype::Clear, DayArchetype::Storm],
            &[10.0],
        );
        let eta = node.pmu.params().direct_efficiency;
        for p in &report.periods {
            let harvested = p.harvested.value();
            let accounted = p.served_direct.value() / eta + p.stored.value() + p.wasted.value();
            assert!(
                (harvested - accounted).abs() < 1e-6,
                "{pattern}: period {} harvested {harvested} vs accounted {accounted}",
                p.period
            );
        }
    }
}

#[test]
fn storage_never_creates_energy() {
    // Over any horizon, the energy delivered from storage cannot exceed
    // the energy absorbed into it (round-trip efficiency < 1).
    for archetypes in [
        vec![DayArchetype::Clear],
        vec![DayArchetype::BrokenClouds, DayArchetype::Overcast],
        vec![
            DayArchetype::Clear,
            DayArchetype::Storm,
            DayArchetype::Storm,
        ],
    ] {
        let (report, _) = run_one(Pattern::Intra, &archetypes, &[22.0]);
        let stored: f64 = report.periods.iter().map(|p| p.stored.value()).sum();
        let delivered: f64 = report
            .periods
            .iter()
            .map(|p| p.served_storage.value())
            .sum();
        assert!(
            delivered <= stored + 1e-6,
            "{archetypes:?}: delivered {delivered} > stored {stored}"
        );
        if stored > 1.0 {
            assert!(
                delivered / stored < 0.95,
                "round trip too good to be true: {}",
                delivered / stored
            );
        }
    }
}

#[test]
fn served_energy_never_exceeds_demand_or_supply() {
    let (report, _) = run_one(
        Pattern::Asap,
        &[DayArchetype::Overcast, DayArchetype::Overcast],
        &[5.0, 50.0],
    );
    let harvested = report.total_harvested().value();
    let served = report.total_served().value();
    assert!(
        served <= harvested,
        "served {served} > harvested {harvested}"
    );
    for p in &report.periods {
        let served_p = p.served_direct.value() + p.served_storage.value();
        let demand_p = served_p + p.unmet.value();
        assert!(served_p <= demand_p + 1e-9);
    }
}

#[test]
fn optimal_planner_obeys_the_same_ledger() {
    let trace = TraceBuilder::new(grid(2), SolarPanel::paper_panel())
        .seed(18)
        .days(&[DayArchetype::BrokenClouds, DayArchetype::Storm])
        .build();
    let node = NodeConfig::builder(grid(2))
        .capacitors(&[Farads::new(2.0), Farads::new(22.0)])
        .build()
        .expect("node");
    let graph = benchmarks::ecg();
    let mut planner =
        OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5).expect("optimal");
    let report = Engine::new(&node, &graph, &trace)
        .expect("engine")
        .run(&mut planner)
        .expect("run");
    let eta = node.pmu.params().direct_efficiency;
    for p in &report.periods {
        let accounted = p.served_direct.value() / eta + p.stored.value() + p.wasted.value();
        assert!((p.harvested.value() - accounted).abs() < 1e-6);
    }
    // Misses never exceed the task count.
    assert!(report.periods.iter().all(|p| p.misses <= p.tasks));
}
