//! End-to-end integration of the whole stack: solar generation →
//! sizing → optimal DP → DBN training → online scheduling → metrics.

use helio_nvp::Pmu;
use helio_solar::WeatherProcess;
use heliosched::prelude::*;
use heliosched::{DpConfig, NodeConfig, OfflineConfig};

fn grid(days: usize) -> TimeGrid {
    TimeGrid::new(days, 24, 10, Seconds::new(60.0)).expect("valid grid")
}

fn weather(days: usize, seed: u64) -> helio_solar::SolarTrace {
    TraceBuilder::new(grid(days), SolarPanel::paper_panel())
        .seed(seed)
        .weather(WeatherProcess::temperate())
        .build()
}

#[test]
fn full_pipeline_produces_ordered_schedulers() {
    let graph = benchmarks::ecg();
    let training = weather(3, 91);
    let storage = StorageModelParams::default();
    let sizes =
        size_capacitors(&graph, &training, 3, &storage, &Pmu::default()).expect("sizing succeeds");
    assert_eq!(sizes.len(), 3);

    let node_train = NodeConfig::builder(grid(3))
        .capacitors(&sizes)
        .storage(storage)
        .build()
        .expect("node");
    let mut cfg = OfflineConfig::default();
    cfg.dbn.bp_epochs = 120;
    let mut proposed =
        train_proposed(&node_train, &graph, &training, &cfg).expect("training succeeds");

    let eval = weather(4, 92);
    let node = NodeConfig {
        grid: grid(4),
        ..node_train
    };
    let engine = Engine::new(&node, &graph, &eval).expect("engine");

    let mut optimal =
        OptimalPlanner::compute(&node, &graph, &eval, &DpConfig::default(), 0.5).expect("optimal");
    let opt = engine.run(&mut optimal).expect("optimal run");
    let prop = engine.run(&mut proposed).expect("proposed run");
    let inter = engine
        .run(&mut FixedPlanner::new(Pattern::Inter, 1))
        .expect("inter run");
    let asap = engine
        .run(&mut FixedPlanner::new(Pattern::Asap, 1))
        .expect("asap run");

    // The expected quality ordering. The "optimal" planner quantises
    // the capacitor state into buckets and replays precomputed plans,
    // so it is near-optimal rather than an exact lower bound — allow a
    // few points of slack in both comparisons.
    assert!(
        opt.overall_dmr() <= prop.overall_dmr() + 0.05,
        "optimal {} must approximately bound proposed {}",
        opt.overall_dmr(),
        prop.overall_dmr()
    );
    assert!(
        prop.overall_dmr() <= inter.overall_dmr() + 0.05,
        "proposed {} should not lose badly to inter {}",
        prop.overall_dmr(),
        inter.overall_dmr()
    );
    assert!(
        inter.overall_dmr() <= asap.overall_dmr() + 0.02,
        "energy-aware inter {} should not lose to asap {}",
        inter.overall_dmr(),
        asap.overall_dmr()
    );
}

#[test]
fn mpc_with_perfect_prediction_approaches_optimal() {
    let graph = benchmarks::shm();
    let trace = weather(3, 93);
    let node = NodeConfig::builder(grid(3))
        .capacitors(&[Farads::new(3.0), Farads::new(20.0)])
        .build()
        .expect("node");
    let engine = Engine::new(&node, &graph, &trace).expect("engine");

    let mut optimal =
        OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5).expect("optimal");
    let opt = engine.run(&mut optimal).expect("optimal run");

    let mut mpc = heliosched::ProposedPlanner::mpc(
        Box::new(NoisyOracle::perfect()),
        24,
        DpConfig::default(),
        0.5,
        heliosched::SwitchRule::default(),
    );
    let mpc_report = engine.run(&mut mpc).expect("mpc run");

    assert!(
        (mpc_report.overall_dmr() - opt.overall_dmr()).abs() < 0.08,
        "perfect-prediction MPC {} should track optimal {}",
        mpc_report.overall_dmr(),
        opt.overall_dmr()
    );
}

#[test]
fn optimal_dominates_inter_with_migration() {
    // The long-term planner beats the greedy inter-task baseline on
    // DMR while moving *more* energy through storage (migration is its
    // mechanism, not a side effect).
    let graph = benchmarks::wam();
    let trace = weather(4, 94);
    let node = NodeConfig::builder(grid(4))
        .capacitors(&[Farads::new(2.0), Farads::new(10.0), Farads::new(47.0)])
        .build()
        .expect("node");
    let engine = Engine::new(&node, &graph, &trace).expect("engine");

    let mut optimal =
        OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5).expect("optimal");
    let opt = engine.run(&mut optimal).expect("optimal run");
    let inter = engine
        .run(&mut FixedPlanner::new(Pattern::Inter, 1))
        .expect("inter");

    assert!(opt.overall_dmr() <= inter.overall_dmr() + 1e-9);
    let stored =
        |r: &heliosched::SimReport| -> f64 { r.periods.iter().map(|p| p.stored.value()).sum() };
    assert!(
        stored(&opt) > 0.0,
        "the optimal plan must migrate energy at all"
    );
}

#[test]
fn reports_serialise_to_json() {
    let graph = benchmarks::ecg();
    let trace = weather(1, 95);
    let node = NodeConfig::builder(grid(1))
        .capacitors(&[Farads::new(10.0)])
        .build()
        .expect("node");
    let report = Engine::new(&node, &graph, &trace)
        .expect("engine")
        .run(&mut FixedPlanner::new(Pattern::Intra, 0))
        .expect("run");
    let json = serde_json::to_string(&report).expect("serialise");
    let back: heliosched::SimReport = serde_json::from_str(&json).expect("deserialise");
    // JSON prints decimal floats, so the round trip is close rather
    // than bit-exact; check structure and aggregates.
    assert_eq!(report.planner, back.planner);
    assert_eq!(report.periods.len(), back.periods.len());
    assert!((report.overall_dmr() - back.overall_dmr()).abs() < 1e-12);
    assert!((report.total_harvested().value() - back.total_harvested().value()).abs() < 1e-6);
}
