//! The paper's motivating application end to end: a wild-animal
//! monitoring collar (eight tasks: locating, heart-rate sampling,
//! voice recording, audio processing, emergency response, compression,
//! storage, transmission) powered by a 3.5x4.5 cm^2 panel through the
//! dual-channel architecture.
//!
//! Walks the whole offline + online pipeline:
//! 1. size the distributed supercapacitors on training weather,
//! 2. generate optimal samples and train the DBN,
//! 3. deploy the proposed planner on a fresh week of weather and
//!    compare it with the published baselines.
//!
//! ```text
//! cargo run --release --example wildlife_monitoring
//! ```

use helio_nvp::Pmu;
use helio_solar::WeatherProcess;
use heliosched::prelude::*;
use heliosched::{NodeConfig, OfflineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let periods_per_day = 48;
    let graph = benchmarks::wam();
    println!(
        "wildlife monitoring collar: {} tasks on {} NVPs",
        graph.len(),
        graph.nvp_count()
    );

    // --- Offline, at design time -------------------------------------
    let train_grid = TimeGrid::new(8, periods_per_day, 10, Seconds::new(60.0))?;
    let training = TraceBuilder::new(train_grid, SolarPanel::paper_panel())
        .seed(100)
        .weather(WeatherProcess::temperate())
        .build();

    let storage = StorageModelParams::default();
    let sizes = size_capacitors(&graph, &training, 4, &storage, &Pmu::default())?;
    println!(
        "sized capacitor bank: [{}] F",
        sizes
            .iter()
            .map(|c| format!("{:.1}", c.value()))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let node_train = NodeConfig::builder(train_grid)
        .capacitors(&sizes)
        .storage(storage)
        .build()?;
    let mut offline = OfflineConfig::default();
    offline.dbn.bp_epochs = 500;
    let mut proposed = train_proposed(&node_train, &graph, &training, &offline)?;
    println!(
        "DBN trained on {} optimal samples",
        train_grid.total_periods()
    );

    // --- Online, in the field ----------------------------------------
    let week_grid = TimeGrid::new(7, periods_per_day, 10, Seconds::new(60.0))?;
    let week = TraceBuilder::new(week_grid, SolarPanel::paper_panel())
        .seed(555)
        .weather(WeatherProcess::temperate())
        .build();
    let node = NodeConfig {
        grid: week_grid,
        ..node_train
    };
    let engine = Engine::new(&node, &graph, &week)?;

    let mut inter = FixedPlanner::new(Pattern::Inter, sizes.len() / 2);
    let mut intra = FixedPlanner::new(Pattern::Intra, sizes.len() / 2);
    let inter_report = engine.run(&mut inter)?;
    let intra_report = engine.run(&mut intra)?;
    let proposed_report = engine.run(&mut proposed)?;

    println!();
    println!(
        "one week in the field ({} periods):",
        week_grid.total_periods()
    );
    println!(
        "{:>6} {:>9} {:>9} {:>9}",
        "day", "inter[3]", "intra[9]", "proposed"
    );
    for d in 0..7 {
        println!(
            "{:>6} {:>8.1}% {:>8.1}% {:>8.1}%",
            d + 1,
            100.0 * inter_report.day_dmr(d),
            100.0 * intra_report.day_dmr(d),
            100.0 * proposed_report.day_dmr(d)
        );
    }
    println!();
    println!(
        "week DMR: inter {:5.1}% | intra {:5.1}% | proposed {:5.1}%",
        100.0 * inter_report.overall_dmr(),
        100.0 * intra_report.overall_dmr(),
        100.0 * proposed_report.overall_dmr()
    );
    println!(
        "energy utilisation: inter {:5.1}% | intra {:5.1}% | proposed {:5.1}% \
         (lower for the proposed: migration costs energy but saves deadlines)",
        100.0 * inter_report.energy_utilisation(),
        100.0 * intra_report.energy_utilisation(),
        100.0 * proposed_report.energy_utilisation()
    );

    // Which capacitors did the planner actually use?
    let mut usage = vec![0usize; sizes.len()];
    for p in &proposed_report.periods {
        usage[p.capacitor] += 1;
    }
    println!();
    println!("capacitor usage over the week:");
    for (h, (&count, size)) in usage.iter().zip(&sizes).enumerate() {
        println!("  C{h} = {:6.1} F: active in {count} periods", size.value());
    }
    Ok(())
}
