//! Distributed supercapacitor sizing, step by step (paper Section 4.1
//! and the Fig. 2 motivation).
//!
//! Shows why one size cannot fit all: the loss-minimising capacitance
//! depends on how much energy a day migrates and for how long. Then
//! runs the full sizing pipeline: per-day optima from the ASAP
//! migration pattern, clustered into H physical sizes.
//!
//! ```text
//! cargo run --release --example capacitor_sizing
//! ```

use helio_nvp::Pmu;
use helio_storage::{migration_efficiency, MigrationSpec, SuperCap};
use heliosched::offline::asap_demand_profile;
use heliosched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let storage = StorageModelParams::default();

    // --- Fig. 2: the migration-efficiency trade-off -------------------
    println!("# migration efficiency by capacitor size");
    println!(
        "{:>10} {:>14} {:>14}",
        "size", "7 J / 60 min", "30 J / 400 min"
    );
    for c in [0.5, 1.0, 2.0, 5.0, 10.0, 22.0, 50.0, 100.0] {
        let cap = SuperCap::new(Farads::new(c), &storage)?;
        println!(
            "{:>9}F {:>13.1}% {:>13.1}%",
            c,
            100.0 * migration_efficiency(&cap, &storage, MigrationSpec::small_short()),
            100.0 * migration_efficiency(&cap, &storage, MigrationSpec::large_long()),
        );
    }
    println!("small caps win short/small migrations; mid caps win long/large ones.");

    // --- Section 4.1: the sizing pipeline ------------------------------
    let grid = TimeGrid::new(8, 48, 10, Seconds::new(60.0))?;
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(321)
        .weather(helio_solar::WeatherProcess::temperate())
        .build();
    let graph = benchmarks::wam();

    // Step 1: the ASAP migration pattern dE (Eq. 2).
    let demand = asap_demand_profile(&graph, grid.slots_per_period(), grid.slot_duration());
    let total_demand: f64 = demand.iter().map(|e| e.value()).sum();
    println!();
    println!(
        "ASAP per-period demand: {:.1} J across {} slots",
        total_demand,
        demand.len()
    );

    // Step 2: per-day optimal capacitance (Eq. 10).
    println!();
    println!("# per-day optimal capacitances");
    for day in 0..grid.days() {
        let day_trace = trace.extract_day(day);
        let mut delta_e = Vec::new();
        for j in 0..grid.periods_per_day() {
            for (m, s) in day_trace.grid().slots_in(PeriodRef::new(0, j)).enumerate() {
                delta_e.push(day_trace.slot_energy(s) - demand[m]);
            }
        }
        let out = helio_storage::optimal_capacitance(
            &delta_e,
            grid.slot_duration(),
            &storage,
            Farads::new(0.3),
            Farads::new(150.0),
        )?;
        println!(
            "  day {day} ({}): C_opt = {:6.1} F, loss {:6.1} J",
            trace.day_archetype(day).expect("synthetic"),
            out.capacitance.value(),
            out.loss.value()
        );
    }

    // Step 3: cluster into H sizes.
    for h in [2usize, 4] {
        let sizes = size_capacitors(&graph, &trace, h, &storage, &Pmu::default())?;
        println!(
            "clustered into H={h}: [{}] F",
            sizes
                .iter()
                .map(|c| format!("{:.1}", c.value()))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(())
}
