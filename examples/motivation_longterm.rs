//! The paper's Fig. 1 motivation, reproduced: a scheduler that
//! maximises the *current* period's completions spends the capacitor
//! during the day and has nothing left at night; a long-term planner
//! accepts slightly worse daytime DMR and banks energy for the dark
//! hours.
//!
//! ```text
//! cargo run --release --example motivation_longterm
//! ```

use heliosched::prelude::*;
use heliosched::DpConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = TimeGrid::new(1, 48, 10, Seconds::new(60.0))?;
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(9)
        .days(&[DayArchetype::Overcast])
        .build();
    let graph = benchmarks::shm();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(15.0)])
        .build()?;
    let engine = Engine::new(&node, &graph, &trace)?;

    let mut greedy = FixedPlanner::new(Pattern::Intra, 0);
    let greedy_report = engine.run(&mut greedy)?;
    let mut optimal = OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5)?;
    let longterm_report = engine.run(&mut optimal)?;

    println!("# Fig. 1 motivation: per-period DMR, greedy vs long-term");
    println!(
        "{:>6} {:>8} {:>8} {:>10}",
        "hour", "greedy", "longterm", "solar(mW)"
    );
    for (j, (g, l)) in greedy_report
        .periods
        .iter()
        .zip(&longterm_report.periods)
        .enumerate()
    {
        if j % 2 != 0 {
            continue; // print every other period for brevity
        }
        let solar_mw = g.harvested.value() / grid.period_duration().value() * 1e3;
        println!(
            "{:>6.1} {:>7.0}% {:>7.0}% {:>10.1}",
            grid.hour_of_day(PeriodRef::new(0, j)),
            100.0 * g.dmr(),
            100.0 * l.dmr(),
            solar_mw
        );
    }

    // Aggregate day vs night.
    let split = |r: &heliosched::SimReport, night: bool| {
        let (m, t) = r
            .periods
            .iter()
            .filter(|p| {
                let h = grid.hour_of_day(p.period);
                let is_night = !(6.0..18.0).contains(&h);
                is_night == night
            })
            .fold((0usize, 0usize), |(m, t), p| (m + p.misses, t + p.tasks));
        m as f64 / t.max(1) as f64
    };
    println!();
    println!(
        "daytime DMR: greedy {:5.1}% vs long-term {:5.1}%",
        100.0 * split(&greedy_report, false),
        100.0 * split(&longterm_report, false)
    );
    println!(
        "night DMR:   greedy {:5.1}% vs long-term {:5.1}%",
        100.0 * split(&greedy_report, true),
        100.0 * split(&longterm_report, true)
    );
    println!(
        "total DMR:   greedy {:5.1}% vs long-term {:5.1}%",
        100.0 * greedy_report.overall_dmr(),
        100.0 * longterm_report.overall_dmr()
    );
    Ok(())
}
