//! Quickstart: simulate one day of the ECG benchmark on the
//! dual-channel solar node and compare a baseline scheduler against
//! the static optimal.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use heliosched::prelude::*;
use heliosched::DpConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A one-day horizon: 48 periods of ten 60-second slots.
    let grid = TimeGrid::new(1, 48, 10, Seconds::new(60.0))?;

    // Synthetic solar for a broken-clouds day on the paper's
    // 3.5x4.5 cm^2, 6 %-efficient panel.
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(42)
        .days(&[DayArchetype::BrokenClouds])
        .build();
    println!(
        "harvested energy over the day: {:.1} J",
        trace.total_energy().value()
    );

    // The ECG task set: six tasks (filters, QRS detection, FFT, AES).
    let graph = benchmarks::ecg();
    println!(
        "task set `{}`: {} tasks, {:.1} J per period",
        graph.name(),
        graph.len(),
        graph.total_energy().value()
    );

    // A node with two supercapacitors.
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(2.0), Farads::new(22.0)])
        .build()?;

    let engine = Engine::new(&node, &graph, &trace)?;

    // Baseline: intra-task load matching on the big capacitor.
    let mut intra = FixedPlanner::new(Pattern::Intra, 1);
    let base = engine.run(&mut intra)?;

    // Upper bound: the long-term DP on the true solar trace.
    let mut optimal = OptimalPlanner::compute(&node, &graph, &trace, &DpConfig::default(), 0.5)?;
    let best = engine.run(&mut optimal)?;

    println!();
    println!(
        "intra-task baseline: DMR {:5.1}%  energy utilisation {:5.1}%",
        100.0 * base.overall_dmr(),
        100.0 * base.energy_utilisation()
    );
    println!(
        "static optimal:      DMR {:5.1}%  energy utilisation {:5.1}%",
        100.0 * best.overall_dmr(),
        100.0 * best.energy_utilisation()
    );
    println!(
        "long-term planning saves {:.1} DMR points on this day",
        100.0 * (base.overall_dmr() - best.overall_dmr())
    );
    Ok(())
}
