//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro` token streams (the build
//! environment has no registry access, so `syn`/`quote` are not
//! available). Supports exactly the type shapes this workspace defines:
//!
//! * structs with named fields → JSON objects;
//! * tuple structs with one field → transparent (the inner value);
//! * tuple structs with several fields → JSON arrays;
//! * unit structs → `null`;
//! * enums whose variants all carry no data → the variant name as a
//!   JSON string.
//!
//! `#[serde(...)]` attributes are accepted and ignored; the only one
//! used in-tree is `transparent`, which matches the single-field tuple
//! behaviour above. Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving type.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    /// Enum variants with their payload arity (0 = unit, 1 = newtype).
    Enum(Vec<(String, usize)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Splits a token slice on top-level commas, treating `<...>` as
/// nesting (groups are already atomic trees).
fn count_top_level_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut saw_token = false;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    // A trailing comma adds a phantom field.
    if !saw_token {
        fields -= 1;
    }
    fields
}

/// Extracts named-field identifiers from the brace-group tokens.
fn named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (`#[...]`, doc comments included).
        if is_punct(&tokens[i], '#') {
            i += 2; // '#' + bracket group
            continue;
        }
        // Skip visibility.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Field name.
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: unexpected token in struct body: {other}"),
        };
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Consume the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        out.push(name);
    }
    out
}

/// Extracts variant names and payload arities from the enum
/// brace-group tokens. Unit and single-field tuple (newtype) variants
/// are supported; struct variants and wider tuples are rejected.
fn enum_variants(tokens: &[TokenTree], type_name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(&tokens[i], '#') {
            i += 2;
            continue;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: unexpected token in enum `{type_name}`: {other}"),
        };
        i += 1;
        let mut arity = 0usize;
        match tokens.get(i) {
            None => {}
            Some(tt) if is_punct(tt, ',') => i += 1,
            Some(tt) if is_punct(tt, '=') => {
                // Explicit discriminant: skip to the next comma.
                while i < tokens.len() && !is_punct(&tokens[i], ',') {
                    i += 1;
                }
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_top_level_fields(&g.stream().into_iter().collect::<Vec<_>>());
                assert!(
                    arity == 1,
                    "serde_derive: enum `{type_name}` variant `{name}` has {arity} fields; \
                     only unit and newtype variants are supported by the vendored derive"
                );
                i += 1;
                if let Some(tt) = tokens.get(i) {
                    if is_punct(tt, ',') {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive: enum `{type_name}` variant `{name}` is a struct variant; \
                 only unit and newtype variants are supported by the vendored derive"
            ),
            Some(other) => panic!("serde_derive: unexpected token after variant `{name}`: {other}"),
        }
        out.push((name, arity));
    }
    out
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(tt) if is_punct(tt, '#') => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(tt) = tokens.get(i) {
        assert!(
            !is_punct(tt, '<'),
            "serde_derive: generic type `{name}` is not supported by the vendored derive"
        );
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple(
                count_top_level_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(tt) if is_punct(tt, ';') => Shape::Unit,
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum(
                enum_variants(&g.stream().into_iter().collect::<Vec<_>>(), &name),
            ),
            other => panic!("serde_derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    };
    Parsed { name, shape }
}

/// `#[derive(Serialize)]` — JSON writer implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let mut code = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            code.push_str("out.push('}');");
            code
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        Shape::Tuple(n) => {
            let mut code = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            code.push_str("out.push(']');");
            code
        }
        Shape::Unit => "out.push_str(\"null\");".to_string(),
        Shape::Enum(variants) => {
            // Externally tagged, as upstream serde: unit variants
            // serialize as the variant-name string, newtype variants as
            // a one-key object.
            let arms: String = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!("{name}::{v} => ::serde::write_escaped(\"{v}\", out),\n")
                    } else {
                        format!(
                            "{name}::{v}(inner) => {{\n\
                             out.push_str(\"{{\\\"{v}\\\":\");\n\
                             ::serde::Serialize::serialize_json(inner, out);\n\
                             out.push('}}');\n}}\n"
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — reconstruction from a parsed JSON value.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::deserialize_json(v.field(\"{f}\")?)?,\n")
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{\n{inits}}})")
        }
        Shape::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::deserialize_json(v)?))"
                .to_string()
        }
        Shape::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_json(v.index({i})?)?,\n"))
                .collect();
            format!("::std::result::Result::Ok(Self({inits}))")
        }
        Shape::Unit => "::std::result::Result::Ok(Self)".to_string(),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 1)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize_json(payload)?)),\n"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, payload) = &pairs[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n{newtype_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError(\
                 \"expected enum tag\".to_string())),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let _ = v;\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}
