//! Offline stand-in for the `rand_chacha` crate: a genuine ChaCha8
//! stream-cipher generator behind the same `ChaCha8Rng` name and
//! `rand_core::SeedableRng` seeding entry points the workspace uses.
//!
//! Determinism is the contract: the same seed always yields the same
//! stream, on every platform (the core is pure integer arithmetic).
//! The block function, word order, and `seed_from_u64` expansion follow
//! upstream `rand_chacha`/`rand_core`, so seeded streams reproduce the
//! values the original dependency produced.

use rand::RngCore;

/// Seeding traits, mirroring the `rand_core` re-export of upstream.
pub mod rand_core {
    /// A generator constructible from a fixed-size seed.
    pub trait SeedableRng: Sized {
        /// Seed type (32 bytes for the ChaCha family).
        type Seed: Default + AsMut<[u8]>;

        /// Builds the generator from a full seed.
        fn from_seed(seed: Self::Seed) -> Self;

        /// Builds the generator from a 64-bit seed, expanded with a
        /// PCG32 stream exactly as `rand_core` 0.6 does, so that nearby
        /// integers give unrelated streams.
        fn seed_from_u64(mut state: u64) -> Self {
            fn pcg32(state: &mut u64) -> [u8; 4] {
                const MUL: u64 = 6_364_136_223_846_793_005;
                const INC: u64 = 11_634_580_027_462_260_723;
                *state = state.wrapping_mul(MUL).wrapping_add(INC);
                let s = *state;
                let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
                let rot = (s >> 59) as u32;
                xorshifted.rotate_right(rot).to_le_bytes()
            }
            let mut seed = Self::Seed::default();
            for chunk in seed.as_mut().chunks_mut(4) {
                let x = pcg32(&mut state);
                chunk.copy_from_slice(&x[..chunk.len()]);
            }
            Self::from_seed(seed)
        }
    }

    pub use rand::RngCore;
}

const CHACHA_ROUNDS: usize = 8;

/// The ChaCha8 deterministic generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 8 key words, 2 counter words,
    /// 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means "refill".
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (b, (xi, si)) in self.buf.iter_mut().zip(x.iter().zip(&self.state)) {
            *b = xi.wrapping_add(*si);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl rand_core::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(lo) | (u64::from(hi) << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha8_known_answer() {
        // ECRYPT ChaCha8 test vector: 256-bit zero key, zero IV, first
        // keystream block.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let expected: [u8; 32] = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1, 0x2c, 0x84, 0x0e, 0xc3, 0xce, 0x9a, 0x7f, 0x3b, 0x18, 0x1b, 0xe1, 0x88,
            0xef, 0x71, 0x1a, 0x1e,
        ];
        let mut got = [0u8; 32];
        for (chunk, _) in got.chunks_mut(4).zip(0..) {
            chunk.copy_from_slice(&rng.next_u32().to_le_bytes());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = ChaCha8Rng::seed_from_u64(1).gen();
        let b: u64 = ChaCha8Rng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn nearby_seeds_are_decorrelated() {
        // The low bytes of consecutive outputs should not track the seed.
        let xs: Vec<u64> = (0..64)
            .map(|s| ChaCha8Rng::seed_from_u64(s).gen())
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "collisions across seeds");
    }

    #[test]
    fn stream_advances_and_clones_fork() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a: u64 = rng.gen();
        let mut fork = rng.clone();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
        assert_eq!(b, fork.gen::<u64>(), "clone resumes at same point");
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of many unit draws should approach 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
