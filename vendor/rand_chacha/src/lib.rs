//! Offline stand-in for the `rand_chacha` crate: a genuine ChaCha8
//! stream-cipher generator behind the same `ChaCha8Rng` name and
//! `rand_core::SeedableRng` seeding entry points the workspace uses.
//!
//! Determinism is the contract: the same seed always yields the same
//! stream, on every platform (the core is pure integer arithmetic).
//! The block function, word order, and `seed_from_u64` expansion follow
//! upstream `rand_chacha`/`rand_core`, so seeded streams reproduce the
//! values the original dependency produced.

use rand::RngCore;

/// Seeding traits, mirroring the `rand_core` re-export of upstream.
pub mod rand_core {
    /// A generator constructible from a fixed-size seed.
    pub trait SeedableRng: Sized {
        /// Seed type (32 bytes for the ChaCha family).
        type Seed: Default + AsMut<[u8]>;

        /// Builds the generator from a full seed.
        fn from_seed(seed: Self::Seed) -> Self;

        /// Builds the generator from a 64-bit seed, expanded with a
        /// PCG32 stream exactly as `rand_core` 0.6 does, so that nearby
        /// integers give unrelated streams.
        fn seed_from_u64(mut state: u64) -> Self {
            fn pcg32(state: &mut u64) -> [u8; 4] {
                const MUL: u64 = 6_364_136_223_846_793_005;
                const INC: u64 = 11_634_580_027_462_260_723;
                *state = state.wrapping_mul(MUL).wrapping_add(INC);
                let s = *state;
                let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
                let rot = (s >> 59) as u32;
                xorshifted.rotate_right(rot).to_le_bytes()
            }
            let mut seed = Self::Seed::default();
            for chunk in seed.as_mut().chunks_mut(4) {
                let x = pcg32(&mut state);
                chunk.copy_from_slice(&x[..chunk.len()]);
            }
            Self::from_seed(seed)
        }
    }

    pub use rand::RngCore;
}

const CHACHA_ROUNDS: usize = 8;

/// Blocks generated per refill. The keystream is identical to
/// one-block-at-a-time generation — blocks are defined purely by
/// their counter value, so producing four consecutive counters in one
/// pass changes batching, never bytes.
const WIDE: usize = 4;

/// The ChaCha8 deterministic generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 8 key words, 2 counter words,
    /// 2 nonce words.
    state: [u32; 16],
    /// Current keystream: [`WIDE`] consecutive blocks, in block then
    /// word order.
    buf: [u32; 16 * WIDE],
    /// Next unread word of `buf`; the buffer length means "refill".
    idx: usize,
}

impl ChaCha8Rng {
    /// Generates the next [`WIDE`] keystream blocks into `buf` and
    /// advances the 64-bit block counter (words 12..14) accordingly.
    fn refill(&mut self) {
        // Per-block counter words: block `j` runs at counter + j, with
        // the carry into the high word applied per block.
        let mut counters = [(0u32, 0u32); WIDE];
        for (j, c) in counters.iter_mut().enumerate() {
            let (lo, carry) = self.state[12].overflowing_add(j as u32);
            *c = (lo, self.state[13].wrapping_add(u32::from(carry)));
        }
        refill_blocks(&self.state, &counters, &mut self.buf);
        let (lo, carry) = self.state[12].overflowing_add(WIDE as u32);
        self.state[12] = lo;
        self.state[13] = self.state[13].wrapping_add(u32::from(carry));
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= self.buf.len() {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

/// One scalar ChaCha8 block at the given counter words. On x86-64
/// this is the reference the vector refill is tested against; on
/// other targets it is the refill.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn block_scalar(state: &[u32; 16], counter: (u32, u32), out: &mut [u32]) {
    let mut init = *state;
    init[12] = counter.0;
    init[13] = counter.1;
    let mut x = init;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (o, (xi, si)) in out.iter_mut().zip(x.iter().zip(&init)) {
        *o = xi.wrapping_add(*si);
    }
}

/// [`WIDE`] blocks one after another — the portable reference the
/// vector path below reproduces word for word.
#[cfg(not(target_arch = "x86_64"))]
fn refill_blocks(state: &[u32; 16], counters: &[(u32, u32); WIDE], buf: &mut [u32; 16 * WIDE]) {
    for (j, &counter) in counters.iter().enumerate() {
        block_scalar(state, counter, &mut buf[j * 16..(j + 1) * 16]);
    }
}

/// [`WIDE`] blocks in one SSE2 pass: state word `i` of all four
/// blocks shares vector `v[i]`, lane `j` belonging to block `j`, so
/// each quarter-round step runs four blocks wide. ChaCha is pure
/// 32-bit integer arithmetic — adds, xors, rotates — so lanes cannot
/// interact and the words are bit-identical to [`block_scalar`];
/// SSE2 is part of the x86-64 baseline, so no runtime detection is
/// needed.
#[cfg(target_arch = "x86_64")]
fn refill_blocks(state: &[u32; 16], counters: &[(u32, u32); WIDE], buf: &mut [u32; 16 * WIDE]) {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_or_si128, _mm_set1_epi32, _mm_set_epi32, _mm_slli_epi32,
        _mm_srli_epi32, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Rotate each lane left by `L` bits; `R` must be `32 - L` (const
    /// expressions cannot derive it from `L`).
    #[inline(always)]
    fn rotl<const L: i32, const R: i32>(x: __m128i) -> __m128i {
        // SAFETY: SSE2 shifts/or are baseline x86-64 instructions.
        unsafe { _mm_or_si128(_mm_slli_epi32::<L>(x), _mm_srli_epi32::<R>(x)) }
    }

    #[inline(always)]
    fn quarter_v(v: &mut [__m128i; 16], a: usize, b: usize, c: usize, d: usize) {
        // SAFETY: SSE2 adds/xors are baseline x86-64 instructions.
        unsafe {
            v[a] = _mm_add_epi32(v[a], v[b]);
            v[d] = rotl::<16, 16>(_mm_xor_si128(v[d], v[a]));
            v[c] = _mm_add_epi32(v[c], v[d]);
            v[b] = rotl::<12, 20>(_mm_xor_si128(v[b], v[c]));
            v[a] = _mm_add_epi32(v[a], v[b]);
            v[d] = rotl::<8, 24>(_mm_xor_si128(v[d], v[a]));
            v[c] = _mm_add_epi32(v[c], v[d]);
            v[b] = rotl::<7, 25>(_mm_xor_si128(v[b], v[c]));
        }
    }

    // SAFETY: set/add/store are baseline SSE2; the stores write 16
    // bytes into a [u32; 4], which holds exactly 16 bytes.
    unsafe {
        let mut init = [_mm_set1_epi32(0); 16];
        for (vi, &si) in init.iter_mut().zip(state) {
            *vi = _mm_set1_epi32(si as i32);
        }
        // `_mm_set_epi32` takes lanes high to low; lane j is block j.
        init[12] = _mm_set_epi32(
            counters[3].0 as i32,
            counters[2].0 as i32,
            counters[1].0 as i32,
            counters[0].0 as i32,
        );
        init[13] = _mm_set_epi32(
            counters[3].1 as i32,
            counters[2].1 as i32,
            counters[1].1 as i32,
            counters[0].1 as i32,
        );
        let mut v = init;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_v(&mut v, 0, 4, 8, 12);
            quarter_v(&mut v, 1, 5, 9, 13);
            quarter_v(&mut v, 2, 6, 10, 14);
            quarter_v(&mut v, 3, 7, 11, 15);
            // Diagonal round.
            quarter_v(&mut v, 0, 5, 10, 15);
            quarter_v(&mut v, 1, 6, 11, 12);
            quarter_v(&mut v, 2, 7, 8, 13);
            quarter_v(&mut v, 3, 4, 9, 14);
        }
        // Feed-forward add of the per-block input words, then a
        // 16×4 lane-to-block transpose into the output buffer.
        let mut lanes = [0u32; 4];
        for (i, (&vi, &ii)) in v.iter().zip(&init).enumerate() {
            _mm_storeu_si128(lanes.as_mut_ptr().cast(), _mm_add_epi32(vi, ii));
            for (j, &w) in lanes.iter().enumerate() {
                buf[j * 16 + i] = w;
            }
        }
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl rand_core::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            state,
            buf: [0; 16 * WIDE],
            idx: 16 * WIDE,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words of the draw sit in the current buffer,
        // so one index check and no call replaces two of each. The
        // words consumed — and therefore the stream — are identical to
        // the two-`next_word` composition below.
        let i = self.idx;
        if i + 1 < 16 * WIDE {
            let lo = self.buf[i];
            let hi = self.buf[i + 1];
            self.idx = i + 2;
            return u64::from(lo) | (u64::from(hi) << 32);
        }
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(lo) | (u64::from(hi) << 32)
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha8_known_answer() {
        // ECRYPT ChaCha8 test vector: 256-bit zero key, zero IV, first
        // keystream block.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let expected: [u8; 32] = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1, 0x2c, 0x84, 0x0e, 0xc3, 0xce, 0x9a, 0x7f, 0x3b, 0x18, 0x1b, 0xe1, 0x88,
            0xef, 0x71, 0x1a, 0x1e,
        ];
        let mut got = [0u8; 32];
        for (chunk, _) in got.chunks_mut(4).zip(0..) {
            chunk.copy_from_slice(&rng.next_u32().to_le_bytes());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = ChaCha8Rng::seed_from_u64(1).gen();
        let b: u64 = ChaCha8Rng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn nearby_seeds_are_decorrelated() {
        // The low bytes of consecutive outputs should not track the seed.
        let xs: Vec<u64> = (0..64)
            .map(|s| ChaCha8Rng::seed_from_u64(s).gen())
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "collisions across seeds");
    }

    #[test]
    fn stream_advances_and_clones_fork() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a: u64 = rng.gen();
        let mut fork = rng.clone();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
        assert_eq!(b, fork.gen::<u64>(), "clone resumes at same point");
    }

    #[test]
    fn wide_refill_matches_scalar_blocks() {
        // The four-block refill against one-at-a-time scalar blocks,
        // including a counter that wraps its low word mid-batch.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for base in [0u32, 1, u32::MAX - 2, u32::MAX] {
            rng.state[12] = base;
            rng.state[13] = 7;
            rng.refill();
            for j in 0..WIDE as u32 {
                let (lo, carry) = base.overflowing_add(j);
                let mut want = [0u32; 16];
                // `block_scalar` overrides the counter words, so the
                // post-refill state still carries the right key.
                block_scalar(&rng.state, (lo, 7 + u32::from(carry)), &mut want);
                assert_eq!(
                    &rng.buf[j as usize * 16..(j as usize + 1) * 16],
                    &want,
                    "base {base} block {j}"
                );
            }
        }
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of many unit draws should approach 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
