//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to a crates.io
//! registry, so the workspace vendors the slice of `rand` 0.8's API it
//! actually uses: the [`RngCore`]/[`Rng`] traits with `gen`, `gen_range`
//! and `gen_bool`. The sampling algorithms follow upstream 0.8.5
//! bit-for-bit (widening-multiply integer ranges, `[1, 2)`-mantissa
//! float ranges, 53-bit unit doubles), so seeded streams reproduce the
//! values the original dependency produced.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let n = rest.len();
            rest.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly "at large" (the `Standard` distribution of
/// upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int_32 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
std_int_32!(u8, u16, u32, i8, i16, i32);

macro_rules! std_int_64 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int_64!(u64, usize, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Low word first, as upstream.
        let lo = u128::from(rng.next_u64());
        let hi = u128::from(rng.next_u64());
        (hi << 64) | lo
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream compares the most significant bit of a u32.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn wmul_u32(a: u32, b: u32) -> (u32, u32) {
    let full = u64::from(a) * u64::from(b);
    ((full >> 32) as u32, full as u32)
}

#[inline]
fn wmul_u64(a: u64, b: u64) -> (u64, u64) {
    let full = u128::from(a) * u128::from(b);
    ((full >> 64) as u64, full as u64)
}

// Upstream `UniformInt::sample_single_inclusive`: draw a word of the
// "large" width, widening-multiply by the range, reject the biased
// tail via the zone test.
macro_rules! range_int {
    ($($t:ty, $ut:ty, $ul:ty, $wmul:ident;)*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range =
                    ((high as $ut).wrapping_sub(low as $ut).wrapping_add(1)) as $ul;
                if range == 0 {
                    // The whole domain: any value is in range.
                    return <$t as StandardSample>::sample(rng);
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$ul as StandardSample>::sample(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }
    )*};
}

range_int! {
    u8, u8, u32, wmul_u32;
    u16, u16, u32, wmul_u32;
    u32, u32, u32, wmul_u32;
    u64, u64, u64, wmul_u64;
    usize, usize, u64, wmul_u64;
    i8, u8, u32, wmul_u32;
    i16, u16, u32, wmul_u32;
    i32, u32, u32, wmul_u32;
    i64, u64, u64, wmul_u64;
    isize, usize, u64, wmul_u64;
}

// Upstream `UniformFloat`: a mantissa-filled float in `[1, 2)` shifted
// to `[0, 1)`, scaled into the range, with a rejection retry for the
// rounding edge.
macro_rules! range_float {
    ($($t:ty, $ut:ty, $discard:expr, $exp_one:expr;)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                loop {
                    let bits = <$ut as StandardSample>::sample(rng);
                    let value1_2 = <$t>::from_bits((bits >> $discard) | $exp_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let scale = (high - low) / (1.0 as $t - <$t>::EPSILON / 2.0);
                loop {
                    let bits = <$ut as StandardSample>::sample(rng);
                    let value1_2 = <$t>::from_bits((bits >> $discard) | $exp_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res <= high {
                        return res;
                    }
                }
            }
        }
    )*};
}

range_float! {
    f32, u32, 9u32, 0x3f80_0000u32;
    f64, u64, 12u64, 0x3ff0_0000_0000_0000u64;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] — the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (upstream's `Standard` distribution).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (upstream's 64-bit
    /// fixed-point comparison).
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.gen::<u64>() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Upstream-compatible module path for the core trait.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let a = rng.gen_range(5usize..9);
            assert!((5..9).contains(&a));
            let b = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&b));
            let c = rng.gen_range(0u64..=3);
            assert!(c <= 3);
            let d = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = Counter(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
