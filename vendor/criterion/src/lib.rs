//! Offline stand-in for `criterion`: a minimal wall-clock bench harness
//! with the same API surface as the upstream crate's entry points used
//! by this workspace. It reports mean per-iteration time to stdout and
//! makes no statistical claims beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLES: usize = 50;

/// Top-level harness handle passed to every bench function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness receives `--test`; run each
        // routine once just to prove it works, without timing loops.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.samples(), &mut f);
        self
    }

    #[must_use]
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples(),
            _parent: self,
        }
    }

    fn samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            DEFAULT_SAMPLES
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if self._parent.test_mode {
            return self;
        }
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    #[must_use]
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Batch sizing hints; the stand-in treats them all alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timings for one benchmark routine.
pub struct Bencher {
    iters: usize,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // One warm-up pass, then the timed pass.
    let mut warm = Bencher {
        iters: 1,
        total: Duration::ZERO,
    };
    f(&mut warm);
    let mut bench = Bencher {
        iters: samples,
        total: Duration::ZERO,
    };
    f(&mut bench);
    let per_iter = bench.total.as_secs_f64() / bench.iters.max(1) as f64;
    println!(
        "bench {label:<48} {:>12.3} µs/iter ({} iters)",
        per_iter * 1e6,
        bench.iters
    );
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0usize;
        let mut b = Bencher {
            iters: 7,
            total: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0usize;
        let mut b = Bencher {
            iters: 5,
            total: Duration::ZERO,
        };
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &x| b.iter(|| x * x));
        group.finish();
    }
}
