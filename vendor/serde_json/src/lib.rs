//! Offline stand-in for `serde_json`: a strict recursive-descent JSON
//! parser plus the `to_string`/`from_str` entry points the workspace
//! uses, built on the vendored [`serde`] traits.

use serde::Serialize as _;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes a value to indented JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let parsed = parse_value(&compact)?;
    let mut out = String::new();
    pretty(&parsed, 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(indent + 1, out);
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                pad(indent + 1, out);
                serde::write_escaped(k, out);
                out.push_str(": ");
                pretty(val, indent + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(indent, out);
            out.push('}');
        }
        other => other.serialize_json(out),
    }
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize_json(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing input.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

/// Maximum container nesting depth the parser accepts. The descent is
/// recursive, so unbounded `[[[[…` input would overflow the stack
/// (an abort, not a catchable panic); honest data never comes close.
const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{}` at byte {pos}",
            char::from(c),
            pos = *pos
        )))
    }
}

fn parse_at(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        )));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_at(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_at(b, pos, depth + 1)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| Error("invalid utf-8 in number".into()))?;
            // Validate the token once so Deserialize can trust it.
            tok.parse::<f64>()
                .map_err(|_| Error(format!("invalid number `{tok}`")))?;
            Ok(Value::Num(tok.to_string()))
        }
        Some(c) => Err(Error(format!(
            "unexpected byte `{}` at {pos}",
            char::from(*c),
            pos = *pos
        ))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("invalid \\u escape".into()))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u code point".into()))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error("invalid escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("-1.5e3").unwrap(), Value::Num("-1.5e3".into()));
        assert_eq!(parse_value("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse_value(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(u64::deserialize_from(&v, "a", 1).unwrap(), 2);
        assert_eq!(v.field("c").unwrap().as_str().unwrap(), "x");
        use serde::Deserialize;
        let b = bool::deserialize_json(v.field("a").unwrap().index(2).unwrap().field("b").unwrap())
            .unwrap();
        assert!(!b);
    }

    trait FieldIndex: Sized {
        fn deserialize_from(v: &Value, field: &str, idx: usize) -> Result<Self, Error>;
    }
    impl FieldIndex for u64 {
        fn deserialize_from(v: &Value, field: &str, idx: usize) -> Result<Self, Error> {
            use serde::Deserialize;
            Ok(u64::deserialize_json(v.field(field)?.index(idx)?)?)
        }
    }

    #[test]
    fn rejects_deep_nesting_without_overflowing() {
        let deep = "[".repeat(100_000);
        assert!(parse_value(&deep).is_err());
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(parse_value(&deep_obj).is_err());
        // At or under the limit still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse_value(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn round_trips_values() {
        let text = r#"{"x":1.25,"y":[true,null,"s"],"z":-7}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""Aé""#).unwrap();
        assert_eq!(v, Value::Str("Aé".into()));
    }

    #[test]
    fn pretty_prints() {
        let v = parse_value(r#"{"a":[1,2]}"#).unwrap();
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"a\": [\n"));
        assert_eq!(parse_value(&p).unwrap(), v);
    }
}
