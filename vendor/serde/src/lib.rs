//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal serialization framework under serde's
//! names: a [`Serialize`] trait that writes JSON text directly, a
//! [`Deserialize`] trait that reads from a parsed [`Value`] tree, and
//! (behind the `derive` feature) `#[derive(Serialize, Deserialize)]`
//! proc-macros covering the struct/enum shapes this workspace defines.
//!
//! The data format is JSON only — exactly what the workspace needs for
//! report emission and DBN weight round-trips. Numbers are kept as raw
//! tokens so `u64` and shortest-round-trip `f64` survive untouched.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON value. Object keys keep insertion order so output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its raw token to avoid precision loss.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `self` is not an object or the field is
    /// missing.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Indexes into an array.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `self` is not an array or too short.
    pub fn index(&self, i: usize) -> Result<&Value, DeError> {
        match self {
            Value::Arr(items) => items
                .get(i)
                .ok_or_else(|| DeError(format!("array index {i} out of range"))),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The elements of an array.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `self` is not an array.
    pub fn as_array(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The contents of a string.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `self` is not a string.
    pub fn as_str(&self) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into JSON text.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialization from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn deserialize_json(v: &Value) -> Result<Self, DeError>;
}

/// Escapes and appends a string literal (with surrounding quotes).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Serialize impls for primitives and containers ----

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], *self as i128));
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Formats an integer without going through `format!` (hot path for
/// large reports).
fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` prints the shortest representation that round-trips
            // exactly — the determinism contract of report JSON.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

fn ser_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        ser_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        ser_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        ser_seq(self.iter(), out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize_json(out),
            Value::Num(tok) => out.push_str(tok),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => ser_seq(items.iter(), out),
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

// ---- Deserialize impls ----

impl Deserialize for bool {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! de_num {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(tok) => tok.parse::<$t>().map_err(|e| {
                        DeError(format!("bad {} token `{tok}`: {e}", stringify!($t)))
                    }),
                    other => Err(DeError(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
de_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(tok) => tok
                .parse::<f64>()
                .map_err(|e| DeError(format!("bad f64 token `{tok}`: {e}"))),
            // Non-finite floats serialize as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_json(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        v.as_array()?.iter().map(T::deserialize_json).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array()?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::deserialize_json)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError("array conversion failed".into()))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        Ok((
            A::deserialize_json(v.index(0)?)?,
            B::deserialize_json(v.index(1)?)?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_json(v: &Value) -> Result<Self, DeError> {
        Ok((
            A::deserialize_json(v.index(0)?)?,
            B::deserialize_json(v.index(1)?)?,
            C::deserialize_json(v.index(2)?)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ser<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives_serialize() {
        assert_eq!(ser(&true), "true");
        assert_eq!(ser(&42u64), "42");
        assert_eq!(ser(&-7i32), "-7");
        assert_eq!(ser(&1.5f64), "1.5");
        assert_eq!(ser(&f64::NAN), "null");
        assert_eq!(ser(&"a\"b\n".to_string()), "\"a\\\"b\\n\"");
        assert_eq!(ser(&vec![1usize, 2, 3]), "[1,2,3]");
        assert_eq!(ser(&(1u32, 2.5f64)), "[1,2.5]");
        assert_eq!(ser(&Some(3u8)), "3");
        assert_eq!(ser(&None::<u8>), "null");
    }

    #[test]
    fn f64_round_trips_shortest() {
        let x = 0.1f64 + 0.2f64;
        let s = ser(&x);
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn value_accessors() {
        let v = Value::Obj(vec![("a".into(), Value::Num("1".into()))]);
        assert_eq!(u64::deserialize_json(v.field("a").unwrap()).unwrap(), 1);
        assert!(v.field("b").is_err());
        assert!(v.index(0).is_err());
        assert!(Value::Arr(vec![]).index(0).is_err());
    }

    #[test]
    fn deserialize_primitives() {
        assert!(bool::deserialize_json(&Value::Bool(true)).unwrap());
        assert_eq!(
            f64::deserialize_json(&Value::Num("2.5".into())).unwrap(),
            2.5
        );
        assert!(f64::deserialize_json(&Value::Null).unwrap().is_nan());
        assert_eq!(Option::<u32>::deserialize_json(&Value::Null).unwrap(), None);
        assert!(usize::deserialize_json(&Value::Str("x".into())).is_err());
    }
}
