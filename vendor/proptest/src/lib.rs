//! Offline stand-in for `proptest`: deterministic random-input property
//! testing with the same macro surface this workspace uses
//! (`proptest!`, `prop_assert!`, `prop_assert_eq!`, range strategies,
//! `prop::collection::vec`, `any::<T>()`).
//!
//! Shrinking is intentionally not implemented — a failing case panics
//! with the case index and the generator stream is deterministic (seeded
//! from the test name), so failures reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator stream (SplitMix64) seeded from the test
/// name, so every `cargo test` run explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Values produced uniformly over a type's whole domain.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection-length specification: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.lo < self.size.hi, "empty size range strategy");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Property assertion: panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Declares a block of property tests. Each `fn` becomes a `#[test]`
/// that runs its body once per case with arguments drawn from the
/// given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = crate::Strategy::generate(&(-5.0f64..5.0), &mut rng);
            assert!((-5.0..5.0).contains(&x));
            let n = crate::Strategy::generate(&(3usize..40), &mut rng);
            assert!((3..40).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::from_name("vec_strategy_respects_sizes");
        let fixed = crate::Strategy::generate(&prop::collection::vec(any::<bool>(), 8), &mut rng);
        assert_eq!(fixed.len(), 8);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&prop::collection::vec(0.0f64..1.0, 3..40), &mut rng);
            assert!((3..40).contains(&v.len()));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires arguments and assertions together.
        #[test]
        fn macro_smoke(x in 0.0f64..1.0, flags in prop::collection::vec(any::<bool>(), 4)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(flags.len(), 4, "len {}", flags.len());
        }
    }
}
