//! Top-level convenience re-exports for the heliosched reproduction
//! workspace. The substance lives in the `crates/` members; see the
//! README for the map.

pub use helio_ann as ann;
pub use helio_common as common;
pub use helio_nvp as nvp;
pub use helio_sched as sched;
pub use helio_solar as solar;
pub use helio_storage as storage;
pub use helio_tasks as tasks;
pub use heliosched;
